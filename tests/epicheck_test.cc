// End-to-end tests for the model checker (src/check): small clean
// explorations, deterministic replay of the checked-in trace fixtures
// (tests/testdata/check), trace-file round-tripping, and the minimizer.

#include <fstream>
#include <sstream>
#include <string>

#include "check/action.h"
#include "check/checker.h"
#include "check/world.h"
#include "gtest/gtest.h"

#ifndef EPI_SOURCE_DIR
#error "EPI_SOURCE_DIR must be defined by the build"
#endif

namespace epidemic::check {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path =
      std::string(EPI_SOURCE_DIR) + "/tests/testdata/check/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Replays a fixture and returns the report; fails the test on a malformed
// fixture.
CheckReport ReplayFixture(const std::string& name) {
  auto trace = DecodeTrace(ReadFixture(name));
  EXPECT_TRUE(trace.ok()) << trace.status().message();
  WorldConfig world;
  world.num_nodes = trace->nodes;
  world.num_items = trace->items;
  world.num_shards = trace->shards;
  world.wire_version = trace->wire;
  auto mutation = ParseMutation(trace->mutation);
  EXPECT_TRUE(mutation.ok()) << mutation.status().message();
  world.mutation = *mutation;
  return ReplayTrace(world, trace->actions);
}

// A small exhaustive run over the healthy protocol must be violation-free.
TEST(EpicheckTest, SmallExplorationIsClean) {
  CheckerConfig config;
  config.world.num_nodes = 2;
  config.world.num_items = 2;
  config.max_depth = 5;
  CheckReport report = RunCheck(config);
  EXPECT_FALSE(report.violation.has_value())
      << report.violation->description;
  EXPECT_GT(report.states_explored, 100u);
  EXPECT_GT(report.transitions, report.states_explored);
}

// The sharded core must pass the same bar, through the default v3 wire
// segments (delta-encoded IVVs, zero-copy decode — tags 17/18).
TEST(EpicheckTest, ShardedExplorationIsClean) {
  CheckerConfig config;
  config.world.num_nodes = 2;
  config.world.num_items = 2;
  config.world.num_shards = 2;
  config.max_depth = 4;
  CheckReport report = RunCheck(config);
  EXPECT_FALSE(report.violation.has_value())
      << report.violation->description;
}

// And again pinned to the legacy owned v2 segments (tags 14/15), so both
// wire generations stay model-checked.
TEST(EpicheckTest, ShardedExplorationV2IsClean) {
  CheckerConfig config;
  config.world.num_nodes = 2;
  config.world.num_items = 2;
  config.world.num_shards = 2;
  config.world.wire_version = 2;
  config.max_depth = 4;
  CheckReport report = RunCheck(config);
  EXPECT_FALSE(report.violation.has_value())
      << report.violation->description;
}

// The healthy-schedule fixtures replay with zero violations.
TEST(EpicheckTest, CleanFixturesReplayClean) {
  for (const char* name :
       {"clean.trace", "clean_sharded.trace", "clean_sharded_v2.trace"}) {
    CheckReport report = ReplayFixture(name);
    EXPECT_FALSE(report.violation.has_value())
        << name << ": " << report.violation->description;
  }
}

// Every seeded-defect fixture reproduces its violation deterministically.
TEST(EpicheckTest, SeededDefectFixturesReproduce) {
  for (const char* name :
       {"amnesia.trace", "mute_conflicts.trace", "tamper_ivv.trace"}) {
    CheckReport report = ReplayFixture(name);
    EXPECT_TRUE(report.violation.has_value())
        << name << " replayed clean — the seeded defect was not reproduced";
  }
}

// The amnesia defect is caught as a DBVV regression across the crash, and
// the minimizer shrinks any padded schedule back to the 2-action core.
TEST(EpicheckTest, MinimizerShrinksAmnesiaTrace) {
  WorldConfig world;
  world.num_nodes = 2;
  world.num_items = 1;
  world.mutation = Mutation::kAmnesia;

  std::vector<Action> padded;
  padded.push_back(*ParseAction("update 0 0"));
  padded.push_back(*ParseAction("sync 1 0"));
  padded.push_back(*ParseAction("update 1 0"));
  padded.push_back(*ParseAction("crash 0"));
  CheckReport report = ReplayTrace(world, padded);
  ASSERT_TRUE(report.violation.has_value());
  EXPECT_NE(report.violation->description.find("DBVV regressed"),
            std::string::npos)
      << report.violation->description;

  std::vector<Action> minimized = MinimizeTrace(world, padded);
  EXPECT_EQ(minimized.size(), 2u);
  ASSERT_TRUE(ReplayTrace(world, minimized).violation.has_value());
}

// Trace files round-trip through encode/decode, including config directives.
TEST(EpicheckTest, TraceFileRoundTrips) {
  TraceFile file;
  file.nodes = 3;
  file.items = 2;
  file.shards = 2;
  file.wire = 2;
  file.mutation = "amnesia";
  file.actions.push_back(*ParseAction("update 2 1"));
  file.actions.push_back(*ParseAction("oob 0 2 1"));
  file.actions.push_back(*ParseAction("pump 0"));

  auto decoded = DecodeTrace(EncodeTrace(file));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->nodes, file.nodes);
  EXPECT_EQ(decoded->items, file.items);
  EXPECT_EQ(decoded->shards, file.shards);
  EXPECT_EQ(decoded->wire, file.wire);
  EXPECT_EQ(decoded->mutation, file.mutation);
  ASSERT_EQ(decoded->actions.size(), file.actions.size());
  for (size_t i = 0; i < file.actions.size(); ++i) {
    EXPECT_TRUE(decoded->actions[i] == file.actions[i]) << "action " << i;
  }
}

// Malformed trace files are rejected with a clean error.
TEST(EpicheckTest, MalformedTraceIsRejected) {
  EXPECT_FALSE(DecodeTrace("launch 0 1\n").ok());
  EXPECT_FALSE(DecodeTrace("sync 0\n").ok());
  EXPECT_FALSE(DecodeTrace("update zero 0\n").ok());
}

}  // namespace
}  // namespace epidemic::check
