// Fuzz-style robustness tests: every decoder in the system must handle
// arbitrary and mutated bytes without crashing, hanging, or tripping an
// invariant — returning Corruption (or, rarely, a valid decode) instead.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "core/replica.h"
#include "core/snapshot.h"
#include "multidb/multi_db_server.h"
#include "net/codec.h"
#include "tokens/token_service.h"

namespace epidemic {
namespace {

std::string RandomBytes(Rng& rng, size_t max_len) {
  std::string out(rng.Uniform(max_len + 1), '\0');
  for (char& c : out) c = static_cast<char>(rng.Uniform(256));
  return out;
}

class FuzzSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeedTest, RandomBytesNeverCrashAnyDecoder) {
  Rng rng(GetParam() * 1337);
  for (int trial = 0; trial < 400; ++trial) {
    std::string bytes = RandomBytes(rng, 256);
    (void)net::Decode(bytes);
    (void)DecodeSnapshot(bytes);
    (void)net::DecodeScanListing(bytes);
    (void)multidb::UnwrapRouted(bytes);
    (void)multidb::DecodeSummary(bytes);
    (void)tokens::DecodeTokenRequest(bytes);
    (void)tokens::DecodeTokenReply(bytes);
    (void)tokens::DecodeTokenRelease(bytes);
  }
}

TEST_P(FuzzSeedTest, MutatedProtocolFramesFailCleanlyOrDecode) {
  Rng rng(GetParam() * 7331);

  // Build a realistic propagation response frame to mutate.
  Replica src(0, 3), dst(1, 3);
  for (int i = 0; i < 10; ++i) {
    (void)src.Update("item" + std::to_string(i), "value" + std::to_string(i));
  }
  std::string frame = net::Encode(net::Message(
      src.HandlePropagationRequest(dst.BuildPropagationRequest())));

  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = frame;
    // Flip 1-4 random bytes.
    int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    auto decoded = net::Decode(mutated);
    if (!decoded.ok()) continue;
    // If it decoded, feeding it onward must still be safe: the replica
    // validates widths and rejects rather than corrupting state.
    if (auto* resp = std::get_if<PropagationResponse>(&*decoded)) {
      Replica victim(2, 3);
      (void)victim.AcceptPropagation(*resp);
      EXPECT_TRUE(victim.CheckInvariants().ok());
    }
  }
}

TEST_P(FuzzSeedTest, MutatedSnapshotsNeverYieldBrokenReplicas) {
  Rng rng(GetParam() * 9973);
  Replica r(0, 2), peer(1, 2);
  for (int i = 0; i < 8; ++i) {
    (void)r.Update("k" + std::to_string(i), "v");
    (void)peer.Update("p" + std::to_string(i), "w");
  }
  (void)PropagateOnce(peer, r);
  std::string blob = EncodeSnapshot(r);

  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = blob;
    mutated[rng.Uniform(mutated.size())] =
        static_cast<char>(rng.Uniform(256));
    auto restored = DecodeSnapshot(mutated);
    if (restored.ok()) {
      // Decode validates invariants itself; double-check.
      EXPECT_TRUE((*restored)->CheckInvariants().ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Range(uint64_t{1}, uint64_t{6}));

}  // namespace
}  // namespace epidemic
