#include "core/replica.h"

#include <gtest/gtest.h>

#include <string>

namespace epidemic {
namespace {

VersionVector Vv(std::vector<UpdateCount> counts) {
  return VersionVector(std::move(counts));
}

// ---------------------------------------------------------------------------
// User update bookkeeping (§5.3, regular path).

TEST(ReplicaUpdateTest, FirstUpdateBookkeeping) {
  Replica r(0, 3);
  ASSERT_TRUE(r.Update("x", "v1").ok());

  const Item* item = r.FindItem("x");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->value, "v1");
  EXPECT_EQ(item->ivv, Vv({1, 0, 0}));
  EXPECT_EQ(r.dbvv(), Vv({1, 0, 0}));

  // L_00 got one record (x, V_00 = 1).
  const OriginLog& own = r.log_vector().ForOrigin(0);
  ASSERT_EQ(own.size(), 1u);
  EXPECT_EQ(own.head()->seq, 1u);
  EXPECT_EQ(own.head()->item, item->id);
  EXPECT_EQ(item->p[0], own.head());
}

TEST(ReplicaUpdateTest, RepeatedUpdatesKeepOneLogRecord) {
  Replica r(1, 2);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(r.Update("x", "v" + std::to_string(i)).ok());
  }
  EXPECT_EQ(r.dbvv(), Vv({0, 5}));
  EXPECT_EQ(r.FindItem("x")->ivv, Vv({0, 5}));
  // Only the latest record survives (§4.2).
  const OriginLog& own = r.log_vector().ForOrigin(1);
  EXPECT_EQ(own.size(), 1u);
  EXPECT_EQ(own.head()->seq, 5u);
  EXPECT_TRUE(r.CheckInvariants().ok());
}

TEST(ReplicaUpdateTest, UpdatesToDistinctItemsAccumulateRecords) {
  Replica r(0, 2);
  ASSERT_TRUE(r.Update("a", "1").ok());
  ASSERT_TRUE(r.Update("b", "2").ok());
  ASSERT_TRUE(r.Update("c", "3").ok());
  EXPECT_EQ(r.log_vector().ForOrigin(0).size(), 3u);
  EXPECT_EQ(r.dbvv(), Vv({3, 0}));
  EXPECT_TRUE(r.CheckInvariants().ok());
}

TEST(ReplicaUpdateTest, EmptyNameRejected) {
  Replica r(0, 2);
  EXPECT_TRUE(r.Update("", "v").IsInvalidArgument());
}

TEST(ReplicaReadTest, ReadReturnsLatestValue) {
  Replica r(0, 2);
  EXPECT_TRUE(r.Read("x").status().IsNotFound());
  ASSERT_TRUE(r.Update("x", "hello").ok());
  auto v = r.Read("x");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "hello");
}

TEST(ScanTest, PrefixFilterSortedAndLimited) {
  Replica r(0, 2);
  ASSERT_TRUE(r.Update("user/bob", "2").ok());
  ASSERT_TRUE(r.Update("user/alice", "1").ok());
  ASSERT_TRUE(r.Update("config/x", "3").ok());
  ASSERT_TRUE(r.Update("user/carol", "4").ok());
  ASSERT_TRUE(r.Delete("user/carol").ok());  // tombstones excluded

  auto all = r.Scan("");
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].first, "config/x");

  auto users = r.Scan("user/");
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0].first, "user/alice");
  EXPECT_EQ(users[1].first, "user/bob");

  auto limited = r.Scan("user/", 1);
  ASSERT_EQ(limited.size(), 1u);
  EXPECT_EQ(limited[0].first, "user/alice");

  EXPECT_TRUE(r.Scan("zzz").empty());
}

TEST(ScanTest, ScanSeesAuxiliaryValues) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "fresh").ok());
  OobRequest req = a.BuildOobRequest("x");
  OobResponse resp = b.HandleOobRequest(req);
  ASSERT_TRUE(a.AcceptOobResponse(resp).ok());
  auto listed = a.Scan("");
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].second, "fresh");  // the user-visible (aux) value
}

TEST(DebugStringTest, MentionsKeyState) {
  Replica r(1, 3);
  ASSERT_TRUE(r.Update("x", "v").ok());
  ASSERT_TRUE(r.Delete("y").ok());
  std::string s = r.DebugString();
  EXPECT_NE(s.find("replica 1/3"), std::string::npos);
  EXPECT_NE(s.find("items=2"), std::string::npos);
  EXPECT_NE(s.find("tombstones=1"), std::string::npos);
  EXPECT_NE(s.find("dbvv=[0,2,0]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SendPropagation / AcceptPropagation (§5.1, Figs. 2-3).

TEST(PropagationTest, IdenticalReplicasYieldYouAreCurrent) {
  Replica a(0, 2), b(1, 2);
  PropagationResponse resp = b.HandlePropagationRequest(
      a.BuildPropagationRequest());
  EXPECT_TRUE(resp.you_are_current);
  EXPECT_EQ(b.stats().you_are_current_replies, 1u);
  EXPECT_EQ(b.stats().items_shipped, 0u);
  EXPECT_EQ(b.stats().log_records_selected, 0u);
}

TEST(PropagationTest, RecipientAheadYieldsYouAreCurrent) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(a.Update("x", "v").ok());
  // a asks b; b has nothing a misses.
  PropagationResponse resp = b.HandlePropagationRequest(
      a.BuildPropagationRequest());
  EXPECT_TRUE(resp.you_are_current);
}

TEST(PropagationTest, BasicOneItemPropagation) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "v1").ok());

  PropagationResponse resp = b.HandlePropagationRequest(
      a.BuildPropagationRequest());
  ASSERT_FALSE(resp.you_are_current);
  ASSERT_EQ(resp.items.size(), 1u);
  EXPECT_EQ(resp.items[0].name, "x");
  EXPECT_EQ(resp.items[0].value, "v1");
  ASSERT_EQ(resp.tails.size(), 2u);
  EXPECT_TRUE(resp.tails[0].empty());
  ASSERT_EQ(resp.tails[1].size(), 1u);
  EXPECT_EQ(resp.tails[1][0].seq, 1u);

  ASSERT_TRUE(a.AcceptPropagation(resp).ok());
  EXPECT_EQ(*a.Read("x"), "v1");
  EXPECT_EQ(a.dbvv(), b.dbvv());
  EXPECT_EQ(a.FindItem("x")->ivv, b.FindItem("x")->ivv);
  EXPECT_TRUE(a.CheckInvariants().ok());
  EXPECT_TRUE(b.CheckInvariants().ok());
}

TEST(PropagationTest, PropagateOnceHelper) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "v").ok());
  ASSERT_TRUE(b.Update("y", "w").ok());
  auto copied = PropagateOnce(/*source=*/b, /*recipient=*/a);
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(*copied, 2u);
  EXPECT_EQ(*a.Read("y"), "w");

  // Second exchange finds identical replicas: zero items.
  auto again = PropagateOnce(b, a);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

TEST(PropagationTest, OnlyLatestVersionShipped) {
  Replica a(0, 2), b(1, 2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b.Update("x", "v" + std::to_string(i)).ok());
  }
  b.ResetStats();
  ASSERT_TRUE(PropagateOnce(b, a).ok());
  // Ten updates, but only one record and one item cross the wire (§6).
  EXPECT_EQ(b.stats().log_records_selected, 1u);
  EXPECT_EQ(b.stats().items_shipped, 1u);
  EXPECT_EQ(*a.Read("x"), "v9");
}

TEST(PropagationTest, SelectedFlagsDeduplicateAcrossTails) {
  // Node 2 pulls from node 1 after both 0 and 1 updated the same item; the
  // tails for origins 0 and 1 both reference "x", but S must contain it once.
  Replica n0(0, 3), n1(1, 3), n2(2, 3);
  ASSERT_TRUE(n0.Update("x", "from0").ok());
  ASSERT_TRUE(PropagateOnce(n0, n1).ok());
  ASSERT_TRUE(n1.Update("x", "from1").ok());

  PropagationResponse resp = n1.HandlePropagationRequest(
      n2.BuildPropagationRequest());
  ASSERT_FALSE(resp.you_are_current);
  EXPECT_EQ(resp.tails[0].size(), 1u);
  EXPECT_EQ(resp.tails[1].size(), 1u);
  EXPECT_EQ(resp.items.size(), 1u);  // deduplicated by IsSelected
  ASSERT_TRUE(n2.AcceptPropagation(resp).ok());
  EXPECT_EQ(*n2.Read("x"), "from1");
  EXPECT_TRUE(n2.CheckInvariants().ok());
}

TEST(PropagationTest, IsSelectedFlagsResetAfterSend) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "v").ok());
  (void)b.HandlePropagationRequest(a.BuildPropagationRequest());
  // Flags must be flipped back so the next request is unaffected.
  EXPECT_TRUE(b.CheckInvariants().ok());
  PropagationResponse resp = b.HandlePropagationRequest(
      a.BuildPropagationRequest());
  EXPECT_EQ(resp.items.size(), 1u);
}

TEST(PropagationTest, TransitivePropagationThroughMiddleNode) {
  Replica n0(0, 3), n1(1, 3), n2(2, 3);
  ASSERT_TRUE(n0.Update("x", "v").ok());
  ASSERT_TRUE(PropagateOnce(n0, n1).ok());
  // n2 learns n0's update from n1, never talking to n0.
  ASSERT_TRUE(PropagateOnce(n1, n2).ok());
  EXPECT_EQ(*n2.Read("x"), "v");
  EXPECT_EQ(n2.dbvv(), Vv({1, 0, 0}));
  EXPECT_TRUE(n2.CheckInvariants().ok());
}

TEST(PropagationTest, IndirectlyCurrentReplicasDetectedInConstantTime) {
  // The Lotus weakness our protocol fixes (§8.1): i got j's data via an
  // intermediary; a direct i<->j comparison must still be a constant-time
  // "you-are-current".
  Replica n0(0, 3), n1(1, 3), n2(2, 3);
  ASSERT_TRUE(n0.Update("x", "v").ok());
  ASSERT_TRUE(PropagateOnce(n0, n1).ok());
  ASSERT_TRUE(PropagateOnce(n1, n2).ok());

  n0.ResetStats();
  PropagationResponse resp = n0.HandlePropagationRequest(
      n2.BuildPropagationRequest());
  EXPECT_TRUE(resp.you_are_current);
  EXPECT_EQ(n0.stats().log_records_selected, 0u);
  EXPECT_EQ(n0.stats().items_shipped, 0u);
}

TEST(PropagationTest, BidirectionalDivergenceBothDirectionsNeeded) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(a.Update("ax", "1").ok());
  ASSERT_TRUE(b.Update("bx", "2").ok());

  ASSERT_TRUE(PropagateOnce(b, a).ok());  // a learns bx
  EXPECT_EQ(*a.Read("bx"), "2");
  EXPECT_TRUE(a.Read("ax").ok());
  ASSERT_TRUE(PropagateOnce(a, b).ok());  // b learns ax
  EXPECT_EQ(*b.Read("ax"), "1");
  EXPECT_EQ(a.dbvv(), b.dbvv());
  EXPECT_TRUE(a.CheckInvariants().ok());
  EXPECT_TRUE(b.CheckInvariants().ok());
}

TEST(PropagationTest, ManyItemsManyRounds) {
  Replica a(0, 2), b(1, 2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(a.Update("a" + std::to_string(i), "x").ok());
    ASSERT_TRUE(b.Update("b" + std::to_string(i), "y").ok());
  }
  ASSERT_TRUE(PropagateOnce(a, b).ok());
  ASSERT_TRUE(PropagateOnce(b, a).ok());
  EXPECT_EQ(a.dbvv(), b.dbvv());
  EXPECT_EQ(a.items().size(), 200u);
  EXPECT_EQ(b.items().size(), 200u);
  EXPECT_TRUE(a.CheckInvariants().ok());
  EXPECT_TRUE(b.CheckInvariants().ok());
}

// ---------------------------------------------------------------------------
// Conflict handling.

TEST(ConflictTest, ConcurrentUpdatesDetectedAndNotAdopted) {
  RecordingConflictListener conflicts_a;
  Replica a(0, 2, &conflicts_a);
  Replica b(1, 2);
  ASSERT_TRUE(a.Update("x", "fromA").ok());
  ASSERT_TRUE(b.Update("x", "fromB").ok());

  ASSERT_TRUE(PropagateOnce(b, a).ok());
  // Criterion 1 of §2.1: the inconsistency is detected...
  EXPECT_EQ(conflicts_a.count(), 1u);
  EXPECT_EQ(conflicts_a.events()[0].item_name, "x");
  EXPECT_EQ(conflicts_a.events()[0].source, ConflictSource::kPropagation);
  // ...and criterion 2: no overwrite happened.
  EXPECT_EQ(*a.Read("x"), "fromA");
  EXPECT_EQ(a.stats().conflicts_detected, 1u);
  EXPECT_TRUE(a.CheckInvariants().ok());
}

TEST(ConflictTest, ConflictingItemRecordsDroppedButOthersPropagate) {
  RecordingConflictListener conflicts;
  Replica a(0, 2, &conflicts);
  Replica b(1, 2);
  ASSERT_TRUE(a.Update("x", "fromA").ok());
  ASSERT_TRUE(b.Update("x", "fromB").ok());
  ASSERT_TRUE(b.Update("y", "clean").ok());

  ASSERT_TRUE(PropagateOnce(b, a).ok());
  EXPECT_EQ(conflicts.count(), 1u);
  EXPECT_EQ(*a.Read("x"), "fromA");  // conflicting copy rejected
  EXPECT_EQ(*a.Read("y"), "clean");  // clean item still propagated
  // The dropped record must not be in a's log for origin 1: only y's.
  EXPECT_EQ(a.log_vector().ForOrigin(1).size(), 1u);
  EXPECT_TRUE(a.CheckInvariants().ok());
}

TEST(ConflictTest, ConflictReportedOnBothSides) {
  RecordingConflictListener ca, cb;
  Replica a(0, 2, &ca);
  Replica b(1, 2, &cb);
  ASSERT_TRUE(a.Update("x", "A").ok());
  ASSERT_TRUE(b.Update("x", "B").ok());
  ASSERT_TRUE(PropagateOnce(b, a).ok());
  ASSERT_TRUE(PropagateOnce(a, b).ok());
  EXPECT_EQ(ca.count(), 1u);
  EXPECT_EQ(cb.count(), 1u);
}

TEST(ConflictTest, ConflictResolvedBySupersedingUpdate) {
  // After a conflict, a fresh update on one side that has *seen* both
  // histories cannot arise without application action; but a new update on
  // b makes b's copy strictly dominate its previous one, and a still
  // conflicts. This documents that conflicts persist until resolved.
  RecordingConflictListener conflicts;
  Replica a(0, 2, &conflicts);
  Replica b(1, 2);
  ASSERT_TRUE(a.Update("x", "A").ok());
  ASSERT_TRUE(b.Update("x", "B").ok());
  ASSERT_TRUE(PropagateOnce(b, a).ok());
  EXPECT_EQ(conflicts.count(), 1u);
  ASSERT_TRUE(b.Update("x", "B2").ok());
  ASSERT_TRUE(PropagateOnce(b, a).ok());
  EXPECT_EQ(conflicts.count(), 2u);  // still concurrent, still reported
  EXPECT_EQ(*a.Read("x"), "A");
}

// ---------------------------------------------------------------------------
// Malformed input handling.

TEST(RobustnessTest, WrongTailVectorWidthRejected) {
  Replica a(0, 2);
  PropagationResponse resp;
  resp.you_are_current = false;
  resp.tails.resize(5);  // wrong: should be 2
  EXPECT_TRUE(a.AcceptPropagation(resp).IsInvalidArgument());
}

TEST(RobustnessTest, WrongIvvWidthRejected) {
  Replica a(0, 2);
  PropagationResponse resp;
  resp.tails.resize(2);
  WireItem item;
  item.name = "x";
  item.ivv = VersionVector(7);
  resp.items.push_back(item);
  EXPECT_TRUE(a.AcceptPropagation(resp).IsInvalidArgument());
}

// Builds a minimal valid response shipping one item with one record.
PropagationResponse OneItemResponse(size_t n, const std::string& name,
                                    UpdateCount seq, NodeId origin) {
  PropagationResponse resp;
  resp.tails.resize(n);
  resp.tails[origin].push_back(WireLogRecord{name, seq});
  WireItem item;
  item.name = name;
  item.value = "v";
  VersionVector ivv(n);
  ivv[origin] = seq;
  item.ivv = ivv;
  resp.items.push_back(item);
  return resp;
}

TEST(RobustnessTest, OutOfOrderTailRejected) {
  Replica a(0, 2);
  PropagationResponse resp = OneItemResponse(2, "x", 2, 1);
  resp.tails[1].push_back(WireLogRecord{"x", 1});  // decreasing seq
  EXPECT_TRUE(a.AcceptPropagation(resp).IsInvalidArgument());
  EXPECT_EQ(a.dbvv().Total(), 0u);  // nothing applied
  EXPECT_TRUE(a.CheckInvariants().ok());
}

TEST(RobustnessTest, TailRecordBelowHorizonRejected) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "v").ok());
  ASSERT_TRUE(PropagateOnce(b, a).ok());  // a's horizon for origin 1 is 1
  PropagationResponse stale = OneItemResponse(2, "x", 1, 1);  // seq == horizon
  EXPECT_TRUE(a.AcceptPropagation(stale).IsInvalidArgument());
  EXPECT_TRUE(a.CheckInvariants().ok());
}

// Found by fuzzing the v3 segment decoder: DBVV[k] is a sum of item-IVV
// components, so after a conflict drops records it falls below the largest
// seq already in L[k]. The per-origin horizon check alone then lets a
// forged tail claim a seq the log already holds for a different item,
// inserting a duplicate that breaks the origin-order invariant.
TEST(RobustnessTest, TailSeqReuseForDifferentItemRejected) {
  Replica a(0, 3), b(1, 3);
  ASSERT_TRUE(a.Update("alpha", "a0").ok());
  ASSERT_TRUE(a.Update("beta", "b0").ok());
  ASSERT_TRUE(b.Update("beta", "b1").ok());   // will conflict at a
  ASSERT_TRUE(b.Update("gamma", "g1").ok());  // origin seq 2
  auto copied = PropagateOnce(b, a);
  ASSERT_TRUE(copied.ok() || copied.status().IsConflict());
  // The dropped beta record leaves a's horizon below gamma's seq.
  ASSERT_EQ(a.dbvv()[1], 1u);

  PropagationResponse forged;
  forged.tails.resize(3);
  forged.tails[1].push_back(WireLogRecord{"evil", 2});  // L[1] holds 2: gamma
  WireItem item;
  item.name = "evil";
  item.value = "v";
  item.ivv = VersionVector(3);
  item.ivv[1] = 1;  // dominates the fresh local copy → survives the filter
  forged.items.push_back(item);
  EXPECT_TRUE(a.AcceptPropagation(forged).IsInvalidArgument());
  EXPECT_TRUE(a.CheckInvariants().ok());

  // Re-shipping the same seq for the *same* item is legitimate (a relayed
  // dominating copy replaces the record in place via P(x)).
  PropagationResponse reship;
  reship.tails.resize(3);
  reship.tails[1].push_back(WireLogRecord{"gamma", 2});
  reship.tails[2].push_back(WireLogRecord{"gamma", 1});
  WireItem gamma;
  gamma.name = "gamma";
  gamma.value = "g2";
  gamma.ivv = VersionVector(3);
  gamma.ivv[1] = 1;
  gamma.ivv[2] = 1;  // node 2 updated gamma on top of b's write
  reship.items.push_back(gamma);
  ASSERT_TRUE(a.AcceptPropagation(reship).ok());
  EXPECT_EQ(*a.Read("gamma"), "g2");
  EXPECT_TRUE(a.CheckInvariants().ok());
}

TEST(RobustnessTest, RecordForUnshippedItemRejected) {
  Replica a(0, 2);
  PropagationResponse resp = OneItemResponse(2, "x", 1, 1);
  resp.tails[1].push_back(WireLogRecord{"ghost", 2});  // not in S
  EXPECT_TRUE(a.AcceptPropagation(resp).IsInvalidArgument());
}

TEST(RobustnessTest, DuplicateItemInResponseRejected) {
  Replica a(0, 2);
  PropagationResponse resp = OneItemResponse(2, "x", 1, 1);
  resp.items.push_back(resp.items[0]);
  EXPECT_TRUE(a.AcceptPropagation(resp).IsInvalidArgument());
}

TEST(RobustnessTest, EmptyItemNameRejected) {
  Replica a(0, 2);
  PropagationResponse resp = OneItemResponse(2, "", 1, 1);
  EXPECT_TRUE(a.AcceptPropagation(resp).IsInvalidArgument());
}

TEST(RobustnessTest, ValidSyntheticResponseAccepted) {
  Replica a(0, 2);
  PropagationResponse resp = OneItemResponse(2, "x", 1, 1);
  ASSERT_TRUE(a.AcceptPropagation(resp).ok());
  EXPECT_EQ(*a.Read("x"), "v");
  EXPECT_TRUE(a.CheckInvariants().ok());
}

TEST(RobustnessTest, YouAreCurrentAcceptIsNoop) {
  Replica a(0, 2);
  PropagationResponse resp;
  resp.you_are_current = true;
  EXPECT_TRUE(a.AcceptPropagation(resp).ok());
  EXPECT_EQ(a.dbvv(), Vv({0, 0}));
}

// ---------------------------------------------------------------------------
// Stats counters.

TEST(StatsTest, CountersTrackOperations) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "v").ok());
  ASSERT_TRUE(b.Update("y", "w").ok());
  ASSERT_TRUE(PropagateOnce(b, a).ok());

  EXPECT_EQ(b.stats().updates_regular, 2u);
  EXPECT_EQ(b.stats().propagation_requests_served, 1u);
  EXPECT_EQ(b.stats().dbvv_comparisons, 1u);
  EXPECT_EQ(b.stats().items_shipped, 2u);
  EXPECT_EQ(a.stats().items_adopted, 2u);
  EXPECT_EQ(a.stats().records_appended, 2u);
  EXPECT_EQ(a.stats().item_ivv_comparisons, 2u);

  a.ResetStats();
  EXPECT_EQ(a.stats().items_adopted, 0u);
}

}  // namespace
}  // namespace epidemic
