// Concurrency stress for the shard-ownership runtime (runtime/scheduler.h),
// aimed squarely at the TSAN CI leg: writers, optimistic readers, batch
// fan-outs, and cross-shard barriers all race on the same scheduler while
// every read asserts it saw no torn value.
//
// The shard state here is deliberately a plain (non-atomic) map per shard —
// exactly what the server keeps behind the scheduler. If the single-writer
// discipline leaked anywhere (a task running outside its gate, a barrier
// that misses a queued task, a read-cache publish racing a lookup), TSAN
// flags the data race and the self-describing "<key>=<tag>" values catch
// torn bytes even without TSAN.

#include "runtime/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace epidemic::runtime {
namespace {

constexpr size_t kShards = 8;

/// Plain mutable state, one per shard; only ever touched inside that
/// shard's single-writer section.
struct ShardState {
  std::map<std::string, std::string> items;
  uint64_t mutations = 0;
};

/// A value is torn if it is not exactly "<key>=<tag>" for its key.
void AssertUntorn(const std::string& key, const std::string& value) {
  ASSERT_EQ(value.rfind(key + "=", 0), 0u)
      << "torn read: key '" << key << "' returned '" << value << "'";
}

TEST(SchedulerStressTest, WritersReadersBatchesAndBarriers) {
  constexpr int kWriters = 3;
  constexpr int kOpsPerWriter = 1500;
  constexpr int kKeysPerShard = 4;

  ShardScheduler::Options options;
  options.num_shards = kShards;
  options.workers = 2;
  options.channel_capacity = 32;  // small: exercise backpressure
  ShardScheduler sched(options);
  std::vector<ShardState> state(kShards);
  // Total completed mutations; incremented inside the mutating task so the
  // barrier invariant below is exact, not racy.
  std::atomic<uint64_t> total_mutations{0};

  auto key_for = [](size_t shard, int k) {
    return "s" + std::to_string(shard) + "-k" + std::to_string(k);
  };

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  // Writers: every op is one kLocalUpdate task on its shard, mutating the
  // plain map and republishing the fresh value to the optimistic cache.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const size_t shard = static_cast<size_t>(i) % kShards;
        const std::string key = key_for(shard, i % kKeysPerShard);
        const std::string value =
            key + "=w" + std::to_string(w) + "u" + std::to_string(i);
        sched.Execute(shard, TaskKind::kLocalUpdate, /*mutates=*/true,
                      [&, key, value](const ShardToken& token) {
                        state[shard].items[key] = value;
                        ++state[shard].mutations;
                        total_mutations.fetch_add(1,
                                                  std::memory_order_relaxed);
                        if (ShardReadCache* cache = sched.read_cache(shard)) {
                          cache->Publish(key, value, /*absent=*/false,
                                         sched.CurrentVersion(token));
                        }
                      });
      }
    });
  }

  // Optimistic readers: sample version, probe the cache, validate; fall
  // back to a kRead task on miss (and publish so the next probe can hit).
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      uint64_t probes = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t shard = probes++ % kShards;
        const std::string key =
            key_for(shard, static_cast<int>(probes) % kKeysPerShard);
        const uint64_t sample = sched.ReadVersion(shard);
        ShardReadCache* cache = sched.read_cache(shard);
        if (cache != nullptr) {
          std::string value;
          const auto outcome = cache->Lookup(key, sample, &value);
          if (outcome == ShardReadCache::Outcome::kValue &&
              sched.ValidateVersion(shard, sample)) {
            AssertUntorn(key, value);
            continue;
          }
        }
        std::string value;
        bool found = false;
        sched.Execute(shard, TaskKind::kRead, /*mutates=*/false,
                      [&](const ShardToken& token) {
                        auto it = state[shard].items.find(key);
                        if (it != state[shard].items.end()) {
                          found = true;
                          value = it->second;
                        }
                        if (cache != nullptr) {
                          cache->Publish(key, value, /*absent=*/!found,
                                         sched.CurrentVersion(token));
                        }
                      });
        if (found) AssertUntorn(key, value);
      }
      (void)r;
    });
  }

  // Batch fan-outs: one join over all shards per round, like an
  // anti-entropy exchange. Each round's snapshot must be internally
  // untorn and the join must not return before every task ran.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<size_t> sizes(kShards, SIZE_MAX);
      std::vector<ShardScheduler::BatchItem> items;
      items.reserve(kShards);
      for (size_t shard = 0; shard < kShards; ++shard) {
        items.push_back({shard, TaskKind::kSnapshot, /*mutates=*/false,
                         [&, shard](const ShardToken&) {
                           sizes[shard] = state[shard].items.size();
                         }});
      }
      sched.ExecuteBatch(std::move(items));
      for (size_t shard = 0; shard < kShards; ++shard) {
        ASSERT_NE(sizes[shard], SIZE_MAX) << "batch task never ran";
        ASSERT_LE(sizes[shard], static_cast<size_t>(kKeysPerShard));
      }
    }
  });

  // Cross-shard barriers: while every gate is held, the per-shard
  // mutation counters must sum exactly to the global completion counter —
  // the AllShardsLock replacement really does quiesce all writers.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      sched.ExecuteExclusive(/*mutates=*/false, [&](const ExclusiveToken&) {
        uint64_t sum = 0;
        for (const ShardState& s : state) sum += s.mutations;
        ASSERT_EQ(sum, total_mutations.load(std::memory_order_relaxed));
      });
      std::this_thread::yield();
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // Fire-and-forget tasks queued with Post must all run by the time the
  // next barrier drains the channels.
  std::atomic<uint64_t> posted_ran{0};
  for (size_t shard = 0; shard < kShards; ++shard) {
    for (int i = 0; i < 8; ++i) {
      sched.Post(shard, TaskKind::kOther, /*mutates=*/false,
                 [&posted_ran](const ShardToken&) {
                   posted_ran.fetch_add(1, std::memory_order_relaxed);
                 });
    }
  }
  uint64_t final_sum = 0;
  sched.ExecuteExclusive(/*mutates=*/false, [&](const ExclusiveToken&) {
    for (const ShardState& s : state) final_sum += s.mutations;
  });
  EXPECT_EQ(posted_ran.load(), kShards * 8u);
  EXPECT_EQ(final_sum, static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(final_sum, total_mutations.load());

  const SchedulerStats stats = sched.Stats();
  EXPECT_GE(stats.TotalTasks(),
            final_sum + posted_ran.load());  // plus reads/batches
  EXPECT_GT(stats.exclusive_barriers, 0u);
  EXPECT_EQ(stats.workers.size(), 2u);
  EXPECT_GE(stats.tasks_by_kind[static_cast<size_t>(TaskKind::kLocalUpdate)],
            final_sum);
}

// Mutating tasks must bracket the shard version (odd while running), so a
// reader that sampled before a mutation can never validate across it.
TEST(SchedulerStressTest, VersionBracketsInvalidateOptimisticReads) {
  ShardScheduler::Options options;
  options.num_shards = 2;
  options.workers = 0;
  ShardScheduler sched(options);

  const uint64_t before = sched.ReadVersion(0);
  ASSERT_NE(before, OptimisticVersion::kUnstable);
  uint64_t inside = 0;
  sched.Execute(0, TaskKind::kLocalUpdate, /*mutates=*/true,
                [&](const ShardToken& token) {
                  inside = sched.ReadVersion(token.shard());
                });
  EXPECT_EQ(inside, OptimisticVersion::kUnstable);  // odd mid-mutation
  EXPECT_FALSE(sched.ValidateVersion(0, before));
  // Non-mutating tasks leave the version alone: reads stay cacheable.
  const uint64_t after = sched.ReadVersion(0);
  sched.Execute(0, TaskKind::kRead, /*mutates=*/false, [](const ShardToken&) {});
  EXPECT_TRUE(sched.ValidateVersion(0, after));
  // The other shard's version never moved.
  EXPECT_TRUE(sched.ValidateVersion(1, before));
}

// Manual mode is the model checker's pump: nothing runs until an explicit
// Pump step, and PumpAll sweeps shards in ascending order — the
// determinism contract epicheck relies on.
TEST(SchedulerStressTest, ManualModeRunsOnlyWhenPumped) {
  ShardScheduler::Options options;
  options.num_shards = 4;
  options.manual = true;
  ShardScheduler sched(options);
  ASSERT_TRUE(sched.manual());
  ASSERT_EQ(sched.num_workers(), 0u);

  std::vector<size_t> order;
  for (size_t shard : {2, 0, 3, 1}) {
    sched.Post(shard, TaskKind::kOther, /*mutates=*/false,
               [&order, shard](const ShardToken& token) {
                 ASSERT_EQ(token.shard(), shard);
                 order.push_back(shard);
               });
  }
  EXPECT_TRUE(order.empty());  // queued, not run
  EXPECT_EQ(sched.PumpAll(), 4u);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3}));  // ascending sweep
  EXPECT_EQ(sched.PumpAll(), 0u);
}

}  // namespace
}  // namespace epidemic::runtime
