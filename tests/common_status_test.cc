#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace epidemic {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, MessageIsPreserved) {
  Status s = Status::NotFound("item 'foo' missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "item 'foo' missing");
  EXPECT_EQ(s.ToString(), "NotFound: item 'foo' missing");
}

TEST(StatusTest, CopyAndMoveSemantics) {
  Status s = Status::Conflict("boom");
  Status copy = s;
  EXPECT_TRUE(copy.IsConflict());
  EXPECT_TRUE(s.IsConflict());  // source untouched by copy

  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsConflict());
  EXPECT_EQ(moved.message(), "boom");

  Status assigned;
  assigned = copy;
  EXPECT_TRUE(assigned.IsConflict());

  // Self-assignment is a no-op.
  assigned = *&assigned;
  EXPECT_TRUE(assigned.IsConflict());
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kConflict), "Conflict");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  EPI_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_TRUE(UsesReturnNotOk(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string(1000, 'x');
  std::string v = std::move(r).value();
  EXPECT_EQ(v.size(), 1000u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Status ConsumesAssignOrReturn(int x, int* out) {
  EPI_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(ConsumesAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(ConsumesAssignOrReturn(0, &out).IsOutOfRange());
}

}  // namespace
}  // namespace epidemic
