// Mixed-version wire interop: a v3 server (delta segments, tags 17/18)
// and an emulated pre-v3 server (Options::enable_wire_v3 = false — it
// neither sends v3 nor serves v3 requests, rejecting them with the same
// error reply an old binary's codec produces) must converge in both
// directions. The v3 puller falls back to v2 on the rejection, remembers
// it in the sticky per-peer cache, and a single-shard v3 server still
// answers the legacy whole-database v1 handshake (tag 1).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "net/codec.h"
#include "net/inproc_transport.h"
#include "server/replica_server.h"

namespace epidemic::server {
namespace {

using net::Message;

/// Counts Call()s so tests can see the v3→v2 fallback (two round trips)
/// and the sticky downgrade cache (one round trip ever after).
class CountingTransport : public net::Transport {
 public:
  explicit CountingTransport(net::Transport* inner) : inner_(inner) {}
  Result<std::string> Call(NodeId dest, std::string_view request) override {
    ++calls_;
    return inner_->Call(dest, request);
  }
  uint64_t calls() const { return calls_; }
  void Reset() { calls_ = 0; }

 private:
  net::Transport* inner_;
  uint64_t calls_ = 0;
};

class WireInteropTest : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 3;

  WireInteropTest() : hub_(kNodes), inner_(&hub_), transport_(&inner_) {
    servers_.resize(kNodes);
  }

  /// Builds node `i`. `v3` false emulates a pre-v3 binary.
  ReplicaServer* AddServer(NodeId i, bool v3, bool compressed = false,
                           size_t num_shards = 4) {
    ReplicaServer::Options options;
    options.num_shards = num_shards;
    options.enable_wire_v3 = v3;
    options.accept_compressed_segments = compressed;
    servers_[i] =
        std::make_unique<ReplicaServer>(i, kNodes, &transport_, options);
    hub_.Register(i, servers_[i].get());
    return servers_[i].get();
  }

  net::InProcHub hub_;
  net::InProcTransport inner_;
  CountingTransport transport_;
  std::vector<std::unique_ptr<ReplicaServer>> servers_;
};

// A v3 node pulling from an old node gets its tag-17 handshake rejected,
// retries the same handshake as v2 within the same PullFrom, and caches
// the downgrade so later pulls go straight to v2.
TEST_F(WireInteropTest, V3FallsBackToV2AndCachesTheDowngrade) {
  ReplicaServer* modern = AddServer(0, /*v3=*/true);
  ReplicaServer* old = AddServer(1, /*v3=*/false);

  ASSERT_TRUE(old->Update("a", "1").ok());
  transport_.Reset();
  ASSERT_TRUE(modern->PullFrom(1).ok());
  EXPECT_EQ(transport_.calls(), 2u);  // rejected v3 attempt + v2 retry
  EXPECT_EQ(*modern->Read("a"), "1");

  ASSERT_TRUE(old->Update("b", "2").ok());
  transport_.Reset();
  ASSERT_TRUE(modern->PullFrom(1).ok());
  EXPECT_EQ(transport_.calls(), 1u);  // sticky cache: no v3 attempt
  EXPECT_EQ(*modern->Read("b"), "2");
}

// An old node pulling from a v3 node sends a v2 handshake and gets a v2
// response — serving stays version-transparent.
TEST_F(WireInteropTest, OldNodePullsFromV3Server) {
  ReplicaServer* modern = AddServer(0, /*v3=*/true);
  ReplicaServer* old = AddServer(1, /*v3=*/false);

  ASSERT_TRUE(modern->Update("x", "v").ok());
  transport_.Reset();
  ASSERT_TRUE(old->PullFrom(0).ok());
  EXPECT_EQ(transport_.calls(), 1u);
  EXPECT_EQ(*old->Read("x"), "v");
}

// Two v3 nodes negotiate v3 in one round trip, and the serve side really
// runs zero-copy: items ship without a single owned-string staging copy.
TEST_F(WireInteropTest, V3ToV3ServesZeroCopy) {
  ReplicaServer* a = AddServer(0, /*v3=*/true);
  ReplicaServer* b = AddServer(1, /*v3=*/true);

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(a->Update("item" + std::to_string(i), "value").ok());
  }
  transport_.Reset();
  ASSERT_TRUE(b->PullFrom(0).ok());
  EXPECT_EQ(transport_.calls(), 1u);

  ReplicaStats served = a->TotalStats();
  EXPECT_GT(served.items_shipped, 0u);
  EXPECT_EQ(served.serve_staging_allocs, 0u);  // view path end to end
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(*b->Read("item" + std::to_string(i)), "value");
  }
}

// The compression flag is honored per requester: a requester advertising
// kPropFlagAcceptCompressed converges on the same data as one that
// doesn't, against the same v3 server.
TEST_F(WireInteropTest, CompressedSegmentsInterop) {
  ReplicaServer* source = AddServer(0, /*v3=*/true);
  ReplicaServer* plain = AddServer(1, /*v3=*/true, /*compressed=*/false);
  ReplicaServer* packed = AddServer(2, /*v3=*/true, /*compressed=*/true);

  // Repetitive values so the LZ77 pass actually wins and gets kept.
  const std::string value(256, 'z');
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(source->Update("key" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(plain->PullFrom(0).ok());
  ASSERT_TRUE(packed->PullFrom(0).ok());
  for (int i = 0; i < 32; ++i) {
    const std::string name = "key" + std::to_string(i);
    EXPECT_EQ(*plain->Read(name), value);
    EXPECT_EQ(*packed->Read(name), value);
  }
}

// A mixed three-node cluster (v3, old, v3+compressed) converges through
// round-robin pulls, negotiating per pair.
TEST_F(WireInteropTest, MixedClusterConverges) {
  AddServer(0, /*v3=*/true);
  AddServer(1, /*v3=*/false);
  AddServer(2, /*v3=*/true, /*compressed=*/true);

  ASSERT_TRUE(servers_[0]->Update("from0", "a").ok());
  ASSERT_TRUE(servers_[1]->Update("from1", "b").ok());
  ASSERT_TRUE(servers_[2]->Update("from2", "c").ok());

  // Two ring rounds: n-1 pulls reach everyone transitively.
  for (int round = 0; round < 2; ++round) {
    for (NodeId i = 0; i < kNodes; ++i) {
      ASSERT_TRUE(servers_[i]->PullFrom((i + 1) % kNodes).ok());
    }
  }
  auto reference = servers_[0]->Scan("");
  EXPECT_EQ(reference.size(), 3u);
  for (NodeId i = 1; i < kNodes; ++i) {
    EXPECT_EQ(servers_[i]->Scan(""), reference) << "node " << i;
  }
}

// A single-shard v3 server still answers the legacy whole-database v1
// handshake (tag 1) with a v1 response (tag 2).
TEST_F(WireInteropTest, V1HandshakeServedByV3Server) {
  ReplicaServer* modern = AddServer(0, /*v3=*/true, /*compressed=*/false,
                                    /*num_shards=*/1);
  ASSERT_TRUE(modern->Update("legacy", "payload").ok());

  PropagationRequest req;
  req.requester = 1;
  req.dbvv = VersionVector(kNodes);
  Result<Message> reply =
      net::Decode(modern->HandleRequest(net::Encode(Message(req))));
  ASSERT_TRUE(reply.ok()) << reply.status().message();
  auto* resp = std::get_if<PropagationResponse>(&*reply);
  ASSERT_NE(resp, nullptr);
  EXPECT_FALSE(resp->you_are_current);
  ASSERT_EQ(resp->items.size(), 1u);
  EXPECT_EQ(resp->items[0].name, "legacy");
  EXPECT_EQ(resp->items[0].value, "payload");
}

}  // namespace
}  // namespace epidemic::server
