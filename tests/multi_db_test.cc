#include "multidb/multi_db_node.h"

#include <gtest/gtest.h>

namespace epidemic::multidb {
namespace {

TEST(MultiDbTest, OpenCreatesIndependentInstances) {
  MultiDbNode node(0, 2);
  Replica& a = node.OpenDatabase("alpha");
  Replica& b = node.OpenDatabase("beta");
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &node.OpenDatabase("alpha"));  // idempotent
  EXPECT_EQ(node.database_count(), 2u);

  ASSERT_TRUE(a.Update("x", "in-alpha").ok());
  // Separate protocol instance: beta's DBVV unaffected (§2).
  EXPECT_EQ(a.dbvv().Total(), 1u);
  EXPECT_EQ(b.dbvv().Total(), 0u);
  EXPECT_TRUE(b.Read("x").status().IsNotFound());
}

TEST(MultiDbTest, ListDatabasesSorted) {
  MultiDbNode node(0, 2);
  node.OpenDatabase("zeta");
  node.OpenDatabase("alpha");
  auto names = node.ListDatabases();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(MultiDbTest, AddressedClientOperations) {
  MultiDbNode node(0, 2);
  ASSERT_TRUE(node.Update("db1", "k", "v1").ok());
  ASSERT_TRUE(node.Update("db2", "k", "v2").ok());
  EXPECT_EQ(*node.Read("db1", "k"), "v1");
  EXPECT_EQ(*node.Read("db2", "k"), "v2");
  ASSERT_TRUE(node.Delete("db1", "k").ok());
  EXPECT_TRUE(node.Read("db1", "k").status().IsNotFound());
  EXPECT_EQ(*node.Read("db2", "k"), "v2");
  EXPECT_TRUE(node.Read("nope", "k").status().IsNotFound());
}

TEST(MultiDbTest, PullFromSingleDatabase) {
  MultiDbNode a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("docs", "readme", "hello").ok());
  auto copied = a.PullFrom(b, "docs");
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(*copied, 1u);
  EXPECT_EQ(*a.Read("docs", "readme"), "hello");
  EXPECT_TRUE(a.PullFrom(b, "nope").status().IsNotFound());
}

TEST(MultiDbTest, PullAllSyncsEveryLaggingDatabase) {
  MultiDbNode a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("docs", "readme", "hello").ok());
  ASSERT_TRUE(b.Update("config", "timeout", "30").ok());
  ASSERT_TRUE(b.Update("metrics", "cpu", "0.4").ok());
  ASSERT_TRUE(a.Update("local-only", "k", "v").ok());

  auto transferred = a.PullAllFrom(b);
  ASSERT_TRUE(transferred.ok());
  EXPECT_EQ(*transferred, 3u);
  EXPECT_EQ(*a.Read("docs", "readme"), "hello");
  EXPECT_EQ(*a.Read("config", "timeout"), "30");
  EXPECT_EQ(*a.Read("metrics", "cpu"), "0.4");
  // a's own database untouched; b still doesn't have it (pull direction).
  EXPECT_EQ(*a.Read("local-only", "k"), "v");
  EXPECT_EQ(b.FindDatabase("local-only"), nullptr);
}

TEST(MultiDbTest, PullAllSkipsCurrentDatabasesInConstantTime) {
  MultiDbNode a(0, 2), b(1, 2);
  for (int d = 0; d < 5; ++d) {
    std::string db = "db" + std::to_string(d);
    for (int k = 0; k < 20; ++k) {
      ASSERT_TRUE(b.Update(db, "k" + std::to_string(k), "v").ok());
    }
  }
  ASSERT_TRUE(a.PullAllFrom(b).ok());

  // Everything is current; only one database changes.
  ASSERT_TRUE(b.Update("db3", "k0", "fresh").ok());
  // Reset per-replica stats to observe work done by the second sweep.
  for (const std::string& db : a.ListDatabases()) {
    a.FindDatabase(db)->ResetStats();
    b.FindDatabase(db)->ResetStats();
  }
  auto transferred = a.PullAllFrom(b);
  ASSERT_TRUE(transferred.ok());
  EXPECT_EQ(*transferred, 1u);
  EXPECT_EQ(*a.Read("db3", "k0"), "fresh");
  // Current databases were skipped by the summary comparison without even
  // invoking their protocol instances.
  for (int d = 0; d < 5; ++d) {
    std::string db = "db" + std::to_string(d);
    uint64_t served = b.FindDatabase(db)->stats().propagation_requests_served;
    EXPECT_EQ(served, d == 3 ? 1u : 0u) << db;
  }
}

TEST(MultiDbTest, ConflictsReportedPerDatabaseToSharedListener) {
  RecordingConflictListener conflicts;
  MultiDbNode a(0, 2, &conflicts), b(1, 2);
  ASSERT_TRUE(a.Update("db1", "x", "A").ok());
  ASSERT_TRUE(b.Update("db1", "x", "B").ok());
  ASSERT_TRUE(a.Update("db2", "x", "A").ok());  // same item name, other db
  ASSERT_TRUE(a.PullAllFrom(b).ok());
  // Only db1 conflicts; db2's identically-named item is independent.
  EXPECT_EQ(conflicts.count(), 1u);
  EXPECT_EQ(*a.Read("db2", "x"), "A");
}

TEST(MultiDbTest, BuildSummaryReflectsPerDatabaseState) {
  MultiDbNode node(0, 3);
  ASSERT_TRUE(node.Update("a", "k", "v").ok());
  ASSERT_TRUE(node.Update("b", "k", "v").ok());
  ASSERT_TRUE(node.Update("b", "k2", "v").ok());
  auto summary = node.BuildSummary();
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0].db, "a");
  EXPECT_EQ(summary[0].dbvv.Total(), 1u);
  EXPECT_EQ(summary[1].db, "b");
  EXPECT_EQ(summary[1].dbvv.Total(), 2u);
}

TEST(MultiDbTest, ThreeNodeTransitiveMultiDb) {
  MultiDbNode n0(0, 3), n1(1, 3), n2(2, 3);
  ASSERT_TRUE(n0.Update("inventory", "widgets", "12").ok());
  ASSERT_TRUE(n0.Update("users", "alice", "admin").ok());
  ASSERT_TRUE(n1.PullAllFrom(n0).ok());
  ASSERT_TRUE(n2.PullAllFrom(n1).ok());  // transitive, never talks to n0
  EXPECT_EQ(*n2.Read("inventory", "widgets"), "12");
  EXPECT_EQ(*n2.Read("users", "alice"), "admin");
  for (const std::string& db : n2.ListDatabases()) {
    EXPECT_TRUE(n2.FindDatabase(db)->CheckInvariants().ok());
  }
}

}  // namespace
}  // namespace epidemic::multidb
