// Cross-module integration tests: full workloads through the simulator,
// and the codec/server stack replicating real protocol state end-to-end.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/codec.h"
#include "net/inproc_transport.h"
#include "server/replica_server.h"
#include "sim/cluster.h"

namespace epidemic {
namespace {

// ---------------------------------------------------------------------------
// Scenario: the paper's target workload — a large database with a small hot
// set — across several epidemic rounds, checking that total anti-entropy
// work tracks the hot set and not the database size.

TEST(ScenarioTest, HotSetWorkloadWorkTracksDirtyItemsNotDatabaseSize) {
  sim::ClusterConfig config;
  config.protocol = sim::ProtocolKind::kEpidemicDbvv;
  config.num_nodes = 4;
  config.workload.num_items = 20000;
  config.workload.zipf_s = 1.2;  // strongly skewed: small hot set
  config.workload.seed = 21;
  sim::Cluster cluster(config);

  // Preload: one pass creating a large database everywhere (each node gets
  // the items through propagation).
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(cluster
                    .UpdateAt(0, sim::Workload::ItemName(i),
                              "init" + std::to_string(i))
                    .ok());
  }
  auto preload_rounds = cluster.RunUntilConverged(10);
  ASSERT_TRUE(preload_rounds.ok());

  // Steady state: skewed single-writer updates (node 1 writes), then one
  // propagation pass. Counters reset so only steady-state work is measured.
  for (NodeId i = 0; i < 4; ++i) cluster.node(i).ResetSyncStats();
  std::set<std::string> dirty;
  for (int i = 0; i < 100; ++i) {
    std::string item = sim::Workload::ItemName(cluster.workload().SampleItem());
    ASSERT_TRUE(cluster.UpdateAt(1, item, "hot" + std::to_string(i)).ok());
    dirty.insert(item);
  }
  auto rounds = cluster.RunUntilConverged(10);
  ASSERT_TRUE(rounds.ok());

  SyncStats total = cluster.TotalSyncStats();
  // Items examined across the whole convergence is proportional to the
  // dirty set times rounds/nodes — and far below the database size that a
  // per-item protocol would pay *per exchange*.
  EXPECT_GT(total.items_examined, 0u);
  EXPECT_LT(total.items_examined,
            dirty.size() * 4 * (*rounds + 1));
  EXPECT_LT(total.items_examined, 2000u);  // << 2000-item database
}

// ---------------------------------------------------------------------------
// Scenario: week of dial-up style connectivity — nodes sync rarely, updates
// bundle into few exchanges, everything still converges (epidemic property).

TEST(ScenarioTest, InfrequentSyncBundlesManyUpdates) {
  sim::ClusterConfig config;
  config.protocol = sim::ProtocolKind::kEpidemicDbvv;
  config.num_nodes = 3;
  sim::Cluster cluster(config);

  // 50 updates to the same item between syncs: one item crosses the wire.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(cluster.UpdateAt(0, "doc", "rev" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(cluster.SyncPair(1, 0).ok());
  const SyncStats& s = cluster.node(1).sync_stats();
  EXPECT_EQ(s.items_copied, 1u);
  EXPECT_EQ(s.records_shipped, 1u);  // only the latest record (§4.2)
  auto v = cluster.node(1).ClientRead("doc");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "rev49");
}

// ---------------------------------------------------------------------------
// Scenario: originator failure — the §8.2 story, full size.

TEST(ScenarioTest, FailureStoryOracleStaysStaleEpidemicHeals) {
  constexpr size_t kNodes = 6;

  // Oracle: originator pushes to two peers, crashes. The other three stay
  // obsolete no matter how many rounds pass.
  sim::ClusterConfig oracle_config;
  oracle_config.protocol = sim::ProtocolKind::kOraclePush;
  oracle_config.num_nodes = kNodes;
  sim::Cluster oracle(oracle_config);
  ASSERT_TRUE(oracle.UpdateAt(0, "x", "v").ok());
  ASSERT_TRUE(oracle.SyncPair(0, 1).ok());
  ASSERT_TRUE(oracle.SyncPair(0, 2).ok());
  oracle.Crash(0);
  for (int round = 0; round < 10; ++round) oracle.SyncRound();
  EXPECT_EQ(oracle.CountDivergentFrom(1), 3u);  // nodes 3,4,5 stale

  // Epidemic: same crash point; survivors forward and heal.
  sim::ClusterConfig epi_config;
  epi_config.protocol = sim::ProtocolKind::kEpidemicDbvv;
  epi_config.num_nodes = kNodes;
  epi_config.peering = sim::Peering::kRandom;
  epi_config.seed = 17;
  sim::Cluster epidemic(epi_config);
  ASSERT_TRUE(epidemic.UpdateAt(0, "x", "v").ok());
  ASSERT_TRUE(epidemic.SyncPair(1, 0).ok());
  ASSERT_TRUE(epidemic.SyncPair(2, 0).ok());
  epidemic.Crash(0);
  auto rounds = epidemic.RunUntilConverged(50);
  ASSERT_TRUE(rounds.ok()) << rounds.status().ToString();
  EXPECT_EQ(epidemic.CountDivergentFrom(1), 0u);
  auto v = epidemic.node(5).ClientRead("x");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v");
}

// ---------------------------------------------------------------------------
// Scenario: protocol messages survive a encode/decode cycle with real state
// (the server stack uses exactly this path).

TEST(ScenarioTest, PropagationThroughCodecMatchesDirectPropagation) {
  Replica direct_a(0, 3), direct_b(1, 3);
  Replica coded_a(0, 3), coded_b(1, 3);
  for (int i = 0; i < 20; ++i) {
    std::string item = "k" + std::to_string(i % 7);
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(direct_b.Update(item, value).ok());
    ASSERT_TRUE(coded_b.Update(item, value).ok());
  }

  // Direct path.
  ASSERT_TRUE(PropagateOnce(direct_b, direct_a).ok());

  // Codec path: request and response cross a serialization boundary.
  std::string req_wire =
      net::Encode(net::Message(coded_a.BuildPropagationRequest()));
  auto req = net::Decode(req_wire);
  ASSERT_TRUE(req.ok());
  PropagationResponse resp = coded_b.HandlePropagationRequest(
      std::get<PropagationRequest>(*req));
  auto resp2 = net::Decode(net::Encode(net::Message(resp)));
  ASSERT_TRUE(resp2.ok());
  ASSERT_TRUE(
      coded_a.AcceptPropagation(std::get<PropagationResponse>(*resp2)).ok());

  EXPECT_EQ(coded_a.dbvv(), direct_a.dbvv());
  for (int i = 0; i < 7; ++i) {
    std::string item = "k" + std::to_string(i);
    EXPECT_EQ(*coded_a.Read(item), *direct_a.Read(item));
  }
  EXPECT_TRUE(coded_a.CheckInvariants().ok());
}

// ---------------------------------------------------------------------------
// Scenario: a served cluster with mixed client traffic, OOB priority reads,
// and scheduled pulls, ending fully consistent.

TEST(ScenarioTest, ServedClusterMixedTraffic) {
  constexpr size_t kNodes = 3;
  net::InProcHub hub(kNodes);
  net::InProcTransport transport(&hub);
  std::vector<std::unique_ptr<server::ReplicaServer>> servers;
  for (NodeId i = 0; i < kNodes; ++i) {
    servers.push_back(std::make_unique<server::ReplicaServer>(
        i, kNodes, &transport, server::ReplicaServer::Options{}));
    hub.Register(i, servers.back().get());
  }

  server::ReplicaClient c0(&transport, 0), c1(&transport, 1),
      c2(&transport, 2);

  // Clients write to their local servers (disjoint keys).
  ASSERT_TRUE(c0.Update("a", "1").ok());
  ASSERT_TRUE(c1.Update("b", "2").ok());
  ASSERT_TRUE(c2.Update("c", "3").ok());

  // Priority read: client at node 0 needs "b" *now*, before anti-entropy.
  auto hot = c0.OobRead(/*from_peer=*/1, "b");
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(*hot, "2");

  // Scheduled pulls (ring, two passes = transitive closure for 3 nodes).
  for (int pass = 0; pass < 2; ++pass) {
    for (NodeId i = 0; i < kNodes; ++i) {
      ASSERT_TRUE(servers[i]->PullFrom((i + 1) % kNodes).ok());
    }
  }

  for (auto* client : {&c0, &c1, &c2}) {
    EXPECT_EQ(*client->Read("a"), "1");
    EXPECT_EQ(*client->Read("b"), "2");
    EXPECT_EQ(*client->Read("c"), "3");
  }
  // All replicas structurally sound and identical.
  VersionVector dbvv0;
  servers[0]->WithReplica([&dbvv0](const ShardedReplica& r) {
    EXPECT_TRUE(r.CheckInvariants().ok());
    dbvv0 = r.AggregateDbvv();
  });
  for (NodeId i = 1; i < kNodes; ++i) {
    servers[i]->WithReplica([&dbvv0](const ShardedReplica& r) {
      EXPECT_TRUE(r.CheckInvariants().ok());
      EXPECT_EQ(r.AggregateDbvv(), dbvv0);
    });
  }
  for (NodeId i = 0; i < kNodes; ++i) hub.Register(i, nullptr);
}

}  // namespace
}  // namespace epidemic
