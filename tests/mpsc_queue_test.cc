// Property tests for the bounded MPSC task channel (runtime/mpsc_queue.h):
// capacity bounds, per-producer FIFO under contention, exactly-once
// delivery, and bounded backpressure — a full channel rejects pushes and
// WaitNotFull parks producers until the consumer makes space.

#include "runtime/mpsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace epidemic::runtime {
namespace {

TEST(MpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(5).capacity(), 8u);
  EXPECT_EQ(MpscQueue<int>(256).capacity(), 256u);
}

TEST(MpscQueueTest, SingleThreadFifo) {
  MpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(int{i}));
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  int out;
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(MpscQueueTest, TryPushFailsWhenFullAndRecoversAfterPop) {
  MpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.TryPush(int{i}));
  EXPECT_FALSE(q.TryPush(99));  // bounded: full channel rejects
  int out = -1;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(q.TryPush(99));  // one pop frees exactly one cell
  EXPECT_FALSE(q.TryPush(100));
}

TEST(MpscQueueTest, EmptyApproxTracksCompletedPushes) {
  MpscQueue<std::string> q(4);
  EXPECT_TRUE(q.EmptyApprox());
  ASSERT_TRUE(q.TryPush(std::string("a")));
  EXPECT_FALSE(q.EmptyApprox());
  EXPECT_EQ(q.SizeApprox(), 1u);
  std::string out;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, "a");
  EXPECT_TRUE(q.EmptyApprox());
}

// The property the ISSUE names: multiple producers hammer one bounded
// channel; the single consumer must see every item exactly once and each
// producer's items in the order that producer pushed them. A small
// capacity forces constant wraparound and backpressure, which is where a
// broken sequence protocol would tear or duplicate cells.
TEST(MpscQueueTest, MultiProducerExactlyOnceAndPerProducerFifo) {
  constexpr uint64_t kProducers = 4;
  constexpr uint64_t kPerProducer = 20000;
  MpscQueue<uint64_t> q(16);

  std::vector<std::thread> producers;
  for (uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        uint64_t tagged = (p << 32) | i;
        while (!q.TryPush(uint64_t{tagged})) q.WaitNotFull();
      }
    });
  }

  std::vector<uint64_t> next_expected(kProducers, 0);
  uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    uint64_t out;
    if (!q.TryPop(&out)) {
      std::this_thread::yield();
      continue;
    }
    const uint64_t producer = out >> 32;
    const uint64_t seq = out & 0xffffffffu;
    ASSERT_LT(producer, kProducers);
    // Per-producer FIFO: sequence numbers arrive strictly in push order.
    ASSERT_EQ(seq, next_expected[producer])
        << "producer " << producer << " reordered or dropped an item";
    ++next_expected[producer];
    ++received;
    // Bounded: reserved-but-unpopped cells can never exceed capacity.
    ASSERT_LE(q.SizeApprox(), q.capacity());
  }
  for (auto& t : producers) t.join();

  for (uint64_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kPerProducer);  // exactly once, all of them
  }
  uint64_t leftover;
  EXPECT_FALSE(q.TryPop(&leftover));
}

TEST(MpscQueueTest, WaitNotFullParksUntilConsumerMakesSpace) {
  MpscQueue<int> q(2);
  ASSERT_TRUE(q.TryPush(1));
  ASSERT_TRUE(q.TryPush(2));
  ASSERT_FALSE(q.TryPush(3));

  std::atomic<bool> pushed{false};
  std::thread producer([&q, &pushed] {
    while (!q.TryPush(3)) q.WaitNotFull();
    pushed.store(true);
  });

  // The producer can only complete after pops make space; popping both
  // items must unblock it (the notify side of the backpressure protocol).
  int out;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 2);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 3);
}

TEST(MpscQueueTest, PopClearsMovedFromValueEagerly) {
  // Shared-pointer payloads must not linger in popped cells: the pop
  // clears the cell, so captured state (task closures in the scheduler)
  // is released as soon as the task is consumed, not at ring wraparound.
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  MpscQueue<std::shared_ptr<int>> q(4);
  ASSERT_TRUE(q.TryPush(std::move(token)));
  std::shared_ptr<int> out;
  ASSERT_TRUE(q.TryPop(&out));
  ASSERT_EQ(*out, 42);
  out.reset();
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace epidemic::runtime
