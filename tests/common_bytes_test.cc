#include "common/bytes.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

namespace epidemic {
namespace {

TEST(ByteWriterTest, EmptyWriter) {
  ByteWriter w;
  EXPECT_EQ(w.size(), 0u);
  EXPECT_TRUE(w.data().empty());
}

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutFixed32(0xDEADBEEF);
  w.PutFixed64(0x0123456789ABCDEFull);

  ByteReader r(w.data());
  auto u8 = r.GetU8();
  ASSERT_TRUE(u8.ok());
  EXPECT_EQ(*u8, 0xAB);
  auto f32 = r.GetFixed32();
  ASSERT_TRUE(f32.ok());
  EXPECT_EQ(*f32, 0xDEADBEEFu);
  auto f64 = r.GetFixed64();
  ASSERT_TRUE(f64.ok());
  EXPECT_EQ(*f64, 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.AtEnd());
}

// The fixed-width encodings are a wire format, not an ABI: the bytes must
// be little-endian on every host, so a big-endian peer interoperates.
TEST(BytesTest, FixedWidthBytesAreLittleEndian) {
  ByteWriter w;
  w.PutFixed32(0x04030201u);
  w.PutFixed64(0x0807060504030201ull);
  const std::string& b = w.data();
  ASSERT_EQ(b.size(), 12u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(static_cast<uint8_t>(b[i]), i + 1) << "fixed32 byte " << i;
  }
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(static_cast<uint8_t>(b[4 + i]), i + 1) << "fixed64 byte " << i;
  }
  // And the reader reassembles from those exact bytes.
  ByteReader r(std::string_view("\x01\x02\x03\x04", 4));
  auto v = r.GetFixed32();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0x04030201u);
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, EncodesAndDecodes) {
  ByteWriter w;
  w.PutVarint64(GetParam());
  ByteReader r(w.data());
  auto v = r.GetVarint64();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, GetParam());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 129ull, 16383ull, 16384ull,
                      (1ull << 21) - 1, 1ull << 21, (1ull << 28) - 1,
                      1ull << 35, 1ull << 42, 1ull << 49, 1ull << 56,
                      (1ull << 63), std::numeric_limits<uint64_t>::max()));

TEST(BytesTest, VarintSizeIsMinimal) {
  auto encoded_size = [](uint64_t v) {
    ByteWriter w;
    w.PutVarint64(v);
    return w.size();
  };
  EXPECT_EQ(encoded_size(0), 1u);
  EXPECT_EQ(encoded_size(127), 1u);
  EXPECT_EQ(encoded_size(128), 2u);
  EXPECT_EQ(encoded_size(16383), 2u);
  EXPECT_EQ(encoded_size(16384), 3u);
  EXPECT_EQ(encoded_size(std::numeric_limits<uint64_t>::max()), 10u);
}

TEST(BytesTest, StringRoundTrip) {
  ByteWriter w;
  w.PutString("");
  w.PutString("hello");
  std::string binary("\x00\x01\xff", 3);
  w.PutString(binary);

  ByteReader r(w.data());
  auto s1 = r.GetString();
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(*s1, "");
  auto s2 = r.GetString();
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, "hello");
  auto s3 = r.GetString();
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(*s3, binary);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, LargeStringRoundTrip) {
  std::string big(1 << 16, 'z');
  ByteWriter w;
  w.PutString(big);
  ByteReader r(w.data());
  auto s = r.GetString();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, big);
}

TEST(BytesTest, TruncatedU8) {
  ByteReader r("");
  EXPECT_TRUE(r.GetU8().status().IsCorruption());
}

TEST(BytesTest, TruncatedFixed) {
  ByteReader r32(std::string_view("\x01\x02\x03", 3));
  EXPECT_TRUE(r32.GetFixed32().status().IsCorruption());
  ByteReader r64(std::string_view("\x01\x02\x03\x04\x05\x06\x07", 7));
  EXPECT_TRUE(r64.GetFixed64().status().IsCorruption());
}

TEST(BytesTest, TruncatedVarint) {
  // Continuation bit set but no next byte.
  ByteReader r(std::string_view("\x80", 1));
  EXPECT_TRUE(r.GetVarint64().status().IsCorruption());
}

TEST(BytesTest, OverlongVarintRejected) {
  // 11 bytes of continuation: more than a uint64 can hold.
  std::string overlong(11, '\x80');
  ByteReader r(overlong);
  EXPECT_TRUE(r.GetVarint64().status().IsCorruption());
}

TEST(BytesTest, TruncatedStringBody) {
  ByteWriter w;
  w.PutString("hello");
  std::string data = w.Release();
  data.resize(data.size() - 2);  // chop off part of the body
  ByteReader r(data);
  EXPECT_TRUE(r.GetString().status().IsCorruption());
}

TEST(BytesTest, StringLengthBeyondBufferRejected) {
  ByteWriter w;
  w.PutVarint64(1000);  // claims 1000 bytes, provides none
  ByteReader r(w.data());
  EXPECT_TRUE(r.GetString().status().IsCorruption());
}

TEST(BytesTest, RemainingTracksPosition) {
  ByteWriter w;
  w.PutFixed32(7);
  w.PutU8(1);
  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), 5u);
  ASSERT_TRUE(r.GetFixed32().ok());
  EXPECT_EQ(r.remaining(), 1u);
  ASSERT_TRUE(r.GetU8().ok());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, ReleaseMovesBufferOut) {
  ByteWriter w;
  w.PutString("abc");
  std::string data = w.Release();
  EXPECT_FALSE(data.empty());
}

TEST(BytesTest, PutBytesRaw) {
  ByteWriter w;
  const char raw[] = {1, 2, 3};
  w.PutBytes(raw, 3);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.data()[1], 2);
}

TEST(BytesTest, PaddedVarintDecodesViaPaddedGetter) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128},
                     uint64_t{1} << 20, (uint64_t{1} << 35) - 1}) {
    ByteWriter w;
    w.PutPaddedVarint(v, 5);
    EXPECT_EQ(w.size(), 5u);
    ByteReader r(w.data());
    auto got = r.GetVarint64Padded();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(BytesTest, CanonicalGetterRejectsPaddedEncoding) {
  // A 5-byte padded slot holding a small value is a non-minimal encoding;
  // the canonical getter must refuse it so adversarial peers can't alias
  // wire integers. Only GetVarint64Padded (backpatch-slot fields) accepts.
  ByteWriter w;
  w.PutPaddedVarint(7, 5);
  ByteReader r(w.data());
  EXPECT_TRUE(r.GetVarint64().status().IsCorruption());
}

TEST(BytesTest, NonMinimalVarintRejected) {
  // 0x80 0x00 encodes zero in two bytes; canonical form is one byte.
  ByteReader r(std::string_view("\x80\x00", 2));
  EXPECT_TRUE(r.GetVarint64().status().IsCorruption());
  ByteReader rp(std::string_view("\x80\x00", 2));
  auto padded = rp.GetVarint64Padded();
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(*padded, 0u);
}

TEST(BytesTest, TenByteVarintOverflowRejected) {
  // Ten bytes whose final byte carries bits beyond 2^64-1.
  std::string max(9, '\xff');
  max.push_back('\x01');  // exactly UINT64_MAX: canonical, accepted
  ByteReader r_ok(max);
  auto got = r_ok.GetVarint64();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, ~uint64_t{0});

  std::string over(9, '\xff');
  over.push_back('\x02');  // bit 64 set: overflow
  ByteReader r_bad(over);
  EXPECT_TRUE(r_bad.GetVarint64().status().IsCorruption());
  ByteReader r_bad_padded(over);
  EXPECT_TRUE(r_bad_padded.GetVarint64Padded().status().IsCorruption());
}

TEST(BytesTest, OverlongVarintRejectedByBothGetters) {
  // 11 continuation bytes: longer than any uint64 encoding.
  std::string overlong(11, '\x80');
  ByteReader r(overlong);
  EXPECT_TRUE(r.GetVarint64().status().IsCorruption());
  ByteReader rp(overlong);
  EXPECT_TRUE(rp.GetVarint64Padded().status().IsCorruption());
}

TEST(BytesTest, CanonicalRoundTripAllWidths) {
  for (int bits = 0; bits < 64; ++bits) {
    uint64_t v = uint64_t{1} << bits;
    ByteWriter w;
    w.PutVarint64(v);
    ByteReader r(w.data());
    auto got = r.GetVarint64();
    ASSERT_TRUE(got.ok()) << "bits=" << bits;
    EXPECT_EQ(*got, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(BytesTest, GetBytesViewBoundsChecked) {
  ByteReader r(std::string_view("abcdef", 6));
  auto head = r.GetBytesView(4);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(*head, "abcd");
  EXPECT_TRUE(r.GetBytesView(3).status().IsCorruption());
  auto tail = r.GetBytesView(2);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, "ef");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, PaddedStringGetters) {
  ByteWriter w;
  const size_t slot = w.size();
  w.PutPaddedVarint(0, 5);
  w.PutBytes("hello", 5);
  w.OverwritePaddedVarint(slot, 5, 5);
  {
    ByteReader r(w.data());
    auto s = r.GetStringPadded();
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, "hello");
  }
  {
    ByteReader r(w.data());
    auto s = r.GetStringViewPadded();
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, "hello");
  }
  {
    // Canonical GetString must refuse the padded length prefix.
    ByteReader r(w.data());
    EXPECT_TRUE(r.GetString().status().IsCorruption());
  }
}

TEST(BytesTest, OverwritePaddedVarintBackpatches) {
  // The serve path's framing trick: reserve a slot, write the payload,
  // then patch the slot with the now-known length.
  ByteWriter w;
  w.PutU8(0xaa);
  const size_t slot = w.size();
  w.PutPaddedVarint(0, 5);
  w.PutString("payload");
  w.OverwritePaddedVarint(slot, (uint64_t{1} << 34) + 3, 5);
  ByteReader r(w.data());
  ASSERT_TRUE(r.GetU8().ok());
  auto got = r.GetVarint64Padded();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (uint64_t{1} << 34) + 3);
  auto s = r.GetString();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "payload");
}

}  // namespace
}  // namespace epidemic
