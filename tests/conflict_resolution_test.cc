// ResolveConflict: the application-side mechanism that makes a conflict
// resolution supersede both branches (§2 leaves the *choice* to the
// application; the merged version vector makes the choice win everywhere).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/replica.h"

namespace epidemic {
namespace {

VersionVector Vv(std::vector<UpdateCount> counts) {
  return VersionVector(std::move(counts));
}

class ResolutionTest : public ::testing::Test {
 protected:
  ResolutionTest() : a_(0, 2, &conflicts_a_), b_(1, 2, &conflicts_b_) {}

  // Produces a standard conflict on "x": A wrote, B wrote concurrently,
  // and A detected it during a pull from B.
  void MakeConflict() {
    ASSERT_TRUE(a_.Update("x", "fromA").ok());
    ASSERT_TRUE(b_.Update("x", "fromB").ok());
    ASSERT_TRUE(PropagateOnce(b_, a_).ok());
    ASSERT_EQ(conflicts_a_.count(), 1u);
  }

  RecordingConflictListener conflicts_a_, conflicts_b_;
  Replica a_, b_;
};

TEST_F(ResolutionTest, ResolutionSupersedesBothBranches) {
  MakeConflict();
  const ConflictEvent& event = conflicts_a_.events()[0];
  ASSERT_TRUE(
      a_.ResolveConflict("x", event.remote_vv, "merged value").ok());
  EXPECT_EQ(*a_.Read("x"), "merged value");
  // IVV = max(local {1,0}, remote {0,1}) + own increment = {2,1}.
  EXPECT_EQ(a_.FindItem("x")->ivv, Vv({2, 1}));
  EXPECT_EQ(a_.stats().conflicts_resolved, 1u);
  EXPECT_TRUE(a_.CheckInvariants().ok());

  // B adopts the resolution on its next pull — no conflict this time.
  ASSERT_TRUE(PropagateOnce(a_, b_).ok());
  EXPECT_EQ(*b_.Read("x"), "merged value");
  EXPECT_EQ(conflicts_b_.count(), 0u);
  EXPECT_EQ(a_.dbvv(), b_.dbvv());
  EXPECT_TRUE(b_.CheckInvariants().ok());

  // And the system is quiescent: both directions are you-are-current.
  a_.ResetStats();
  b_.ResetStats();
  ASSERT_TRUE(PropagateOnce(b_, a_).ok());
  ASSERT_TRUE(PropagateOnce(a_, b_).ok());
  EXPECT_EQ(a_.stats().conflicts_detected, 0u);
  EXPECT_EQ(b_.stats().conflicts_detected, 0u);
}

TEST_F(ResolutionTest, ResolutionReachesThirdPartyTransitively) {
  MakeConflict();
  Replica c(1, 2);  // unused placeholder id trick avoided: use fresh pair
  const ConflictEvent& event = conflicts_a_.events()[0];
  ASSERT_TRUE(a_.ResolveConflict("x", event.remote_vv, "winner").ok());
  ASSERT_TRUE(PropagateOnce(a_, b_).ok());
  EXPECT_EQ(*b_.Read("x"), "winner");
}

TEST_F(ResolutionTest, NonConflictingVectorRejected) {
  ASSERT_TRUE(a_.Update("x", "v").ok());
  // Dominating and dominated vectors are not conflicts.
  EXPECT_TRUE(
      a_.ResolveConflict("x", Vv({2, 0}), "nope").IsInvalidArgument());
  EXPECT_TRUE(
      a_.ResolveConflict("x", Vv({0, 0}), "nope").IsInvalidArgument());
  EXPECT_TRUE(
      a_.ResolveConflict("x", Vv({1, 2, 3}), "nope").IsInvalidArgument());
}

TEST_F(ResolutionTest, UnknownItemRejected) {
  EXPECT_TRUE(a_.ResolveConflict("ghost", Vv({0, 1}), "v").IsNotFound());
}

TEST_F(ResolutionTest, OutOfBoundItemRejected) {
  MakeConflict();
  // Make x out-of-bound at a third replica and try resolving there.
  Replica c(0, 2);
  ASSERT_TRUE(b_.Update("y", "w").ok());
  OobRequest req = c.BuildOobRequest("y");
  OobResponse resp = b_.HandleOobRequest(req);
  ASSERT_TRUE(c.AcceptOobResponse(resp).ok());
  EXPECT_TRUE(c.ResolveConflict("y", Vv({1, 0}), "v").IsFailedPrecondition());
}

TEST_F(ResolutionTest, ResolutionCanBeDeleteToo) {
  MakeConflict();
  const ConflictEvent& event = conflicts_a_.events()[0];
  // Resolving to an empty value then deleting gives "neither branch wins".
  ASSERT_TRUE(a_.ResolveConflict("x", event.remote_vv, "").ok());
  ASSERT_TRUE(a_.Delete("x").ok());
  ASSERT_TRUE(PropagateOnce(a_, b_).ok());
  EXPECT_TRUE(b_.Read("x").status().IsNotFound());
  EXPECT_EQ(conflicts_b_.count(), 0u);
}

TEST_F(ResolutionTest, CrossResolutionStillConverges) {
  // Both sides detect and BOTH resolve (a race real deployments hit): the
  // two resolutions conflict again, get detected, and a second resolution
  // settles it — the mechanism is idempotent, not magic.
  MakeConflict();
  ASSERT_TRUE(PropagateOnce(a_, b_).ok());  // b detects the mirror conflict
  ASSERT_EQ(conflicts_b_.count(), 1u);

  ASSERT_TRUE(a_.ResolveConflict("x", conflicts_a_.events()[0].remote_vv,
                                 "a-resolution")
                  .ok());
  ASSERT_TRUE(b_.ResolveConflict("x", conflicts_b_.events()[0].remote_vv,
                                 "b-resolution")
                  .ok());
  // The two resolutions are concurrent: next exchange re-detects.
  size_t before = conflicts_a_.count();
  ASSERT_TRUE(PropagateOnce(b_, a_).ok());
  EXPECT_GT(conflicts_a_.count(), before);
  // One more resolution round settles everything.
  ASSERT_TRUE(a_.ResolveConflict("x", conflicts_a_.events().back().remote_vv,
                                 "final")
                  .ok());
  ASSERT_TRUE(PropagateOnce(a_, b_).ok());
  EXPECT_EQ(*b_.Read("x"), "final");
  EXPECT_EQ(a_.dbvv(), b_.dbvv());
  EXPECT_TRUE(a_.CheckInvariants().ok());
  EXPECT_TRUE(b_.CheckInvariants().ok());
}

// End-to-end policy test: an adversarial shared-key workload where one
// designated arbiter node resolves every conflict it detects. The whole
// system must still converge — the strongest statement of criteria 1-3
// *with* conflicts in play.
TEST(ResolveOnDetectTest, ArbiterDrivenWorkloadConverges) {
  constexpr size_t kNodes = 4;
  RecordingConflictListener arbiter_conflicts;
  std::vector<std::unique_ptr<Replica>> nodes;
  nodes.push_back(std::make_unique<Replica>(0, kNodes, &arbiter_conflicts));
  for (NodeId i = 1; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<Replica>(i, kNodes));
  }

  Rng rng(404);
  for (int step = 0; step < 300; ++step) {
    NodeId actor = static_cast<NodeId>(rng.Uniform(kNodes));
    if (rng.NextDouble() < 0.5) {
      ASSERT_TRUE(nodes[actor]
                      ->Update("k" + std::to_string(rng.Uniform(4)),
                               "v" + std::to_string(step) + "@" +
                                   std::to_string(actor))
                      .ok());
    } else {
      NodeId peer = static_cast<NodeId>(rng.Uniform(kNodes));
      if (peer != actor) {
        ASSERT_TRUE(PropagateOnce(*nodes[peer], *nodes[actor]).ok());
      }
    }
  }

  // Quiesce: the arbiter (node 0) pulls from everyone and resolves every
  // conflict it sees in its favour, repeatedly, until a full round of
  // exchanges runs clean and everyone is identical.
  bool converged = false;
  for (int round = 0; round < 64 && !converged; ++round) {
    for (NodeId peer = 1; peer < kNodes; ++peer) {
      size_t before = arbiter_conflicts.count();
      ASSERT_TRUE(PropagateOnce(*nodes[peer], *nodes[0]).ok());
      for (size_t e = before; e < arbiter_conflicts.count(); ++e) {
        const ConflictEvent& event = arbiter_conflicts.events()[e];
        Status s = nodes[0]->ResolveConflict(
            event.item_name, event.remote_vv,
            "resolved:" + event.item_name);
        // The same conflict may be reported by several peers; later
        // resolutions see non-conflicting vectors and are rejected.
        ASSERT_TRUE(s.ok() || s.IsInvalidArgument()) << s.ToString();
      }
    }
    for (NodeId peer = 1; peer < kNodes; ++peer) {
      ASSERT_TRUE(PropagateOnce(*nodes[0], *nodes[peer]).ok());
    }
    converged = true;
    for (NodeId i = 1; i < kNodes && converged; ++i) {
      converged = nodes[i]->dbvv() == nodes[0]->dbvv();
    }
  }

  ASSERT_TRUE(converged);
  for (NodeId i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(nodes[i]->CheckInvariants().ok());
    for (int k = 0; k < 4; ++k) {
      std::string item = "k" + std::to_string(k);
      auto mine = nodes[i]->Read(item);
      auto ref = nodes[0]->Read(item);
      ASSERT_EQ(mine.ok(), ref.ok());
      if (mine.ok()) {
        EXPECT_EQ(*mine, *ref) << "node " << i << " item " << item;
      }
    }
  }
  EXPECT_GT(arbiter_conflicts.count(), 0u);  // the workload really conflicted
}

}  // namespace
}  // namespace epidemic
