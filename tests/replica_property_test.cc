// Property-based tests driving the protocol through long randomized
// schedules and checking the §2.1 correctness criteria plus the structural
// invariants of §4 after every step.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/replica.h"
#include "core/snapshot.h"

namespace epidemic {
namespace {

Status OobFetch(Replica& source, Replica& dest, std::string_view item) {
  OobRequest req = dest.BuildOobRequest(item);
  OobResponse resp = source.HandleOobRequest(req);
  return dest.AcceptOobResponse(resp);
}

// A conflict-free world: each node writes only its own key range, so every
// pair of copies is always ordered and the system must converge with zero
// conflicts (criteria 2 and 3 of §2.1 in their strongest form).
class ConflictFreeScheduleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConflictFreeScheduleTest, RandomScheduleConvergesWithoutConflicts) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const size_t n = 2 + rng.Uniform(4);       // 2..5 nodes
  const size_t items_per_node = 1 + rng.Uniform(5);
  const int steps = 300;

  RecordingConflictListener conflicts;
  std::vector<std::unique_ptr<Replica>> nodes;
  for (NodeId i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<Replica>(i, n, &conflicts));
  }
  // Ground truth: last value written per item.
  std::map<std::string, std::string> truth;

  uint64_t op_counter = 0;
  for (int step = 0; step < steps; ++step) {
    NodeId actor = static_cast<NodeId>(rng.Uniform(n));
    double dice = rng.NextDouble();
    if (dice < 0.42) {
      // Update an item owned by the actor.
      std::string item = "n" + std::to_string(actor) + "-k" +
                         std::to_string(rng.Uniform(items_per_node));
      std::string value = "v" + std::to_string(++op_counter);
      ASSERT_TRUE(nodes[actor]->Update(item, value).ok());
      truth[item] = value;
    } else if (dice < 0.5) {
      // Delete an item owned by the actor (tombstone update).
      std::string item = "n" + std::to_string(actor) + "-k" +
                         std::to_string(rng.Uniform(items_per_node));
      ASSERT_TRUE(nodes[actor]->Delete(item).ok());
      truth.erase(item);
    } else if (dice < 0.9) {
      // Anti-entropy pull from a random peer.
      NodeId peer = static_cast<NodeId>(rng.Uniform(n));
      if (peer == actor) continue;
      ASSERT_TRUE(PropagateOnce(*nodes[peer], *nodes[actor]).ok());
    } else if (dice < 0.96) {
      // Out-of-bound fetch of a random existing item from a random peer.
      NodeId peer = static_cast<NodeId>(rng.Uniform(n));
      if (peer == actor || truth.empty()) continue;
      auto it = truth.begin();
      std::advance(it, static_cast<long>(rng.Uniform(truth.size())));
      Status s = OobFetch(*nodes[peer], *nodes[actor], it->first);
      ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
    } else {
      // "Restart" a node through a snapshot round-trip: the recovered
      // replica must carry the schedule forward indistinguishably.
      auto restored =
          DecodeSnapshot(EncodeSnapshot(*nodes[actor]), &conflicts);
      ASSERT_TRUE(restored.ok())
          << "seed=" << seed << " step=" << step << ": "
          << restored.status().ToString();
      nodes[actor] = std::move(*restored);
    }
    // Structural invariants hold after every step.
    for (const auto& node : nodes) {
      ASSERT_TRUE(node->CheckInvariants().ok())
          << "seed=" << seed << " step=" << step << ": "
          << node->CheckInvariants().ToString();
    }
  }

  // Quiesce: update activity stops; schedule transitive propagation (ring
  // passes) until fixpoint. Criterion 3: everything converges.
  for (size_t round = 0; round < 4 * n; ++round) {
    for (NodeId i = 0; i < n; ++i) {
      NodeId src = static_cast<NodeId>((i + 1) % n);
      ASSERT_TRUE(PropagateOnce(*nodes[src], *nodes[i]).ok());
    }
  }

  EXPECT_EQ(conflicts.count(), 0u) << "seed=" << seed;
  for (NodeId i = 0; i < n; ++i) {
    ASSERT_TRUE(nodes[i]->CheckInvariants().ok());
    EXPECT_EQ(nodes[i]->dbvv(), nodes[0]->dbvv()) << "seed=" << seed;
    // No auxiliary leftovers once everything caught up.
    EXPECT_EQ(nodes[i]->aux_log().size(), 0u) << "seed=" << seed;
    for (const auto& [item, value] : truth) {
      auto read = nodes[i]->Read(item);
      ASSERT_TRUE(read.ok()) << "seed=" << seed << " item=" << item;
      EXPECT_EQ(*read, value)
          << "seed=" << seed << " node=" << i << " item=" << item;
    }
    // Every deleted item reads NotFound everywhere (tombstones won).
    for (const auto& item : nodes[0]->items()) {
      if (item->deleted) {
        EXPECT_TRUE(nodes[i]->Read(item->name).status().IsNotFound())
            << "seed=" << seed << " node=" << i << " item=" << item->name;
      }
    }
  }

  // And once converged, every pairwise exchange is a constant-time no-op.
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      nodes[j]->ResetStats();
      auto copied = PropagateOnce(*nodes[j], *nodes[i]);
      ASSERT_TRUE(copied.ok());
      EXPECT_EQ(*copied, 0u);
      EXPECT_EQ(nodes[j]->stats().you_are_current_replies, 1u);
      EXPECT_EQ(nodes[j]->stats().log_records_selected, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictFreeScheduleTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// An adversarial world: all nodes write the same small key space, so
// conflicts are common. The protocol must keep its structural invariants,
// detect (not mask) conflicts, and never adopt a non-dominating copy.
class ConflictingScheduleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConflictingScheduleTest, InvariantsHoldAndConflictsAreDetectedNotMasked) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 7919);
  const size_t n = 2 + rng.Uniform(3);
  const int steps = 250;

  RecordingConflictListener conflicts;
  std::vector<std::unique_ptr<Replica>> nodes;
  for (NodeId i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<Replica>(i, n, &conflicts));
  }
  // All values ever written, for the no-corruption check.
  std::map<std::string, std::vector<std::string>> written;

  uint64_t op_counter = 0;
  for (int step = 0; step < steps; ++step) {
    NodeId actor = static_cast<NodeId>(rng.Uniform(n));
    if (rng.NextDouble() < 0.45) {
      std::string item = "k" + std::to_string(rng.Uniform(3));  // tiny space
      std::string value = "v" + std::to_string(++op_counter) + "@" +
                          std::to_string(actor);
      ASSERT_TRUE(nodes[actor]->Update(item, value).ok());
      written[item].push_back(value);
    } else {
      NodeId peer = static_cast<NodeId>(rng.Uniform(n));
      if (peer == actor) continue;
      ASSERT_TRUE(PropagateOnce(*nodes[peer], *nodes[actor]).ok());
    }
    for (const auto& node : nodes) {
      ASSERT_TRUE(node->CheckInvariants().ok())
          << "seed=" << seed << " step=" << step;
    }
  }

  // Every visible value must be something some client actually wrote —
  // update propagation can reorder visibility but never invent data.
  for (const auto& node : nodes) {
    for (const auto& [item, values] : written) {
      auto read = node->Read(item);
      if (!read.ok()) continue;  // node may not have heard of the item
      if (read->empty()) continue;  // never-updated regular copy
      bool known = false;
      for (const auto& v : values) known |= (v == *read);
      EXPECT_TRUE(known) << "seed=" << seed << " item=" << item
                         << " phantom value '" << *read << "'";
    }
  }

  // With this much same-key concurrency, conflicts must have been detected
  // (never silently merged) in at least one schedule step.
  if (n >= 2) {
    EXPECT_GT(conflicts.count() + 0u, 0u) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictingScheduleTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace epidemic
