#include "tokens/token_service.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/random.h"
#include "core/replica.h"
#include "net/inproc_transport.h"

namespace epidemic::tokens {
namespace {

class TokenClusterTest : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 4;

  TokenClusterTest() {
    for (NodeId i = 0; i < kNodes; ++i) {
      owned_.push_back(std::make_unique<TokenService>(i, kNodes));
      services_.push_back(owned_.back().get());
    }
  }

  std::vector<std::unique_ptr<TokenService>> owned_;
  std::vector<TokenService*> services_;
};

TEST_F(TokenClusterTest, HomeIsConsistentAcrossNodes) {
  for (NodeId i = 1; i < kNodes; ++i) {
    EXPECT_EQ(services_[0]->HomeOf("some-item"),
              services_[i]->HomeOf("some-item"));
  }
  EXPECT_LT(services_[0]->HomeOf("some-item"), kNodes);
}

TEST_F(TokenClusterTest, UnclaimedTokenHeldByNobody) {
  for (NodeId i = 0; i < kNodes; ++i) {
    EXPECT_FALSE(services_[i]->Holds("x"));
  }
  // The home node acquires through the same path as everyone else.
  NodeId home = services_[0]->HomeOf("x");
  ASSERT_TRUE(TokenService::AcquireDirect(services_, home, "x").ok());
  EXPECT_TRUE(services_[home]->Holds("x"));
  ASSERT_TRUE(TokenService::ReleaseDirect(services_, home, "x").ok());
  EXPECT_FALSE(services_[home]->Holds("x"));
}

TEST_F(TokenClusterTest, AcquireGrantsAndCaches) {
  ASSERT_TRUE(TokenService::AcquireDirect(services_, 2, "x").ok());
  EXPECT_TRUE(services_[2]->Holds("x"));
  // Re-acquisition by the holder is a local no-op.
  ASSERT_TRUE(TokenService::AcquireDirect(services_, 2, "x").ok());
}

TEST_F(TokenClusterTest, MutualExclusion) {
  ASSERT_TRUE(TokenService::AcquireDirect(services_, 1, "x").ok());
  Status s = TokenService::AcquireDirect(services_, 2, "x");
  EXPECT_TRUE(s.IsFailedPrecondition());
  EXPECT_NE(s.message().find("held by node 1"), std::string::npos);
  EXPECT_FALSE(services_[2]->Holds("x"));
}

TEST_F(TokenClusterTest, ReleaseEnablesNextAcquire) {
  ASSERT_TRUE(TokenService::AcquireDirect(services_, 1, "x").ok());
  ASSERT_TRUE(TokenService::ReleaseDirect(services_, 1, "x").ok());
  EXPECT_FALSE(services_[1]->Holds("x"));
  ASSERT_TRUE(TokenService::AcquireDirect(services_, 2, "x").ok());
  EXPECT_TRUE(services_[2]->Holds("x"));
}

TEST_F(TokenClusterTest, ReleaseByNonHolderRejected) {
  ASSERT_TRUE(TokenService::AcquireDirect(services_, 1, "x").ok());
  EXPECT_TRUE(TokenService::ReleaseDirect(services_, 2, "x")
                  .IsFailedPrecondition());
}

TEST_F(TokenClusterTest, IndependentItemsIndependentTokens) {
  ASSERT_TRUE(TokenService::AcquireDirect(services_, 1, "x").ok());
  ASSERT_TRUE(TokenService::AcquireDirect(services_, 2, "y").ok());
  EXPECT_TRUE(services_[1]->Holds("x"));
  EXPECT_TRUE(services_[2]->Holds("y"));
  EXPECT_FALSE(services_[1]->Holds("y"));
}

TEST(TokenCodecTest, RequestRoundTrip) {
  TokenRequest req{3, "item/with/slashes"};
  auto decoded = DecodeTokenRequest(EncodeTokenRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->requester, 3u);
  EXPECT_EQ(decoded->item, "item/with/slashes");
}

TEST(TokenCodecTest, ReplyRoundTrip) {
  TokenReply reply{true, 2, "x"};
  auto decoded = DecodeTokenReply(EncodeTokenReply(reply));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->granted);
  EXPECT_EQ(decoded->holder, 2u);
}

TEST(TokenCodecTest, ReleaseRoundTrip) {
  TokenRelease rel{1, "x"};
  auto decoded = DecodeTokenRelease(EncodeTokenRelease(rel));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->holder, 1u);
}

TEST(TokenCodecTest, WrongTagRejected) {
  std::string frame = EncodeTokenRequest(TokenRequest{0, "x"});
  EXPECT_TRUE(DecodeTokenReply(frame).status().IsCorruption());
  EXPECT_TRUE(DecodeTokenRelease(frame).status().IsCorruption());
}

TEST(TokenCodecTest, TruncationRejected) {
  std::string frame = EncodeTokenReply(TokenReply{true, 7, "item"});
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_FALSE(DecodeTokenReply(frame.substr(0, cut)).ok());
  }
}

// ---------------------------------------------------------------------------
// Distributed deployment: token traffic over a transport.

TEST(TokenTransportTest, AcquireAndReleaseOverInProcHub) {
  constexpr size_t kNodes = 3;
  net::InProcHub hub(kNodes);
  net::InProcTransport transport(&hub);
  std::vector<std::unique_ptr<TokenService>> services;
  std::vector<std::unique_ptr<TokenServiceHandler>> handlers;
  for (NodeId i = 0; i < kNodes; ++i) {
    services.push_back(std::make_unique<TokenService>(i, kNodes));
    handlers.push_back(
        std::make_unique<TokenServiceHandler>(services.back().get()));
    hub.Register(i, handlers.back().get());
  }

  // Pick an item whose home is NOT node 1, so the acquire really crosses
  // the transport.
  std::string item = "remote-item";
  int suffix = 0;
  while (services[1]->HomeOf(item) == 1) {
    item = "remote-item" + std::to_string(++suffix);
  }

  ASSERT_TRUE(services[1]->Acquire(transport, item).ok());
  EXPECT_TRUE(services[1]->Holds(item));

  // Another node is denied, naming the holder.
  NodeId other = (services[1]->HomeOf(item) == 2) ? 0 : 2;
  Status denied = services[other]->Acquire(transport, item);
  EXPECT_TRUE(denied.IsFailedPrecondition());
  EXPECT_NE(denied.message().find("held by node 1"), std::string::npos);

  // Release over the wire frees it for the other node.
  ASSERT_TRUE(services[1]->Release(transport, item).ok());
  EXPECT_FALSE(services[1]->Holds(item));
  ASSERT_TRUE(services[other]->Acquire(transport, item).ok());
}

TEST(TokenTransportTest, HomeDownMakesAcquireUnavailable) {
  constexpr size_t kNodes = 2;
  net::InProcHub hub(kNodes);
  net::InProcTransport transport(&hub);
  TokenService s0(0, kNodes), s1(1, kNodes);
  TokenServiceHandler h0(&s0), h1(&s1);
  hub.Register(0, &h0);
  hub.Register(1, &h1);

  std::string item = "x";
  int suffix = 0;
  while (s1.HomeOf(item) != 0) item = "x" + std::to_string(++suffix);
  hub.SetNodeUp(0, false);
  EXPECT_TRUE(s1.Acquire(transport, item).IsUnavailable());
  // The home node itself needs no transport.
  EXPECT_TRUE(s0.Acquire(transport, item).ok());
}

TEST(TokenTransportTest, GarbageFrameYieldsDenial) {
  TokenService s(0, 1);
  TokenServiceHandler handler(&s);
  auto reply = DecodeTokenReply(handler.HandleRequest("garbage"));
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->granted);
}

// The point of the whole module (§2): with every update guarded by its
// token, concurrent same-item writers are serialized, so replication runs
// conflict-free even on a shared key space.
TEST(PessimisticModeTest, TokenGuardedWorkloadHasZeroConflicts) {
  constexpr size_t kNodes = 3;
  RecordingConflictListener conflicts;
  std::vector<std::unique_ptr<Replica>> replicas;
  std::vector<std::unique_ptr<TokenService>> owned;
  std::vector<TokenService*> tokens;
  for (NodeId i = 0; i < kNodes; ++i) {
    replicas.push_back(std::make_unique<Replica>(i, kNodes, &conflicts));
    owned.push_back(std::make_unique<TokenService>(i, kNodes));
    tokens.push_back(owned.back().get());
  }

  Rng rng(77);
  int denied = 0;
  int granted = 0;
  std::vector<std::set<std::string>> holding(kNodes);
  // Pessimistic discipline: update only while holding the token. Tokens
  // are cached across operations (repeated updates at one site stay
  // local); before handing a token back, the holder propagates its updates
  // to everyone — the freshness hand-off pessimistic systems pair with
  // token transfer, without which the next holder would create a
  // concurrent IVV.
  auto release_all = [&](NodeId actor) {
    if (holding[actor].empty()) return;
    for (NodeId j = 0; j < kNodes; ++j) {
      if (j != actor) {
        ASSERT_TRUE(PropagateOnce(*replicas[actor], *replicas[j]).ok());
      }
    }
    for (const std::string& item : holding[actor]) {
      ASSERT_TRUE(TokenService::ReleaseDirect(tokens, actor, item).ok());
    }
    holding[actor].clear();
  };

  for (int step = 0; step < 500; ++step) {
    NodeId actor = static_cast<NodeId>(rng.Uniform(kNodes));
    double dice = rng.NextDouble();
    if (dice < 0.55) {
      std::string item = "k" + std::to_string(rng.Uniform(3));  // hot keys
      Status acquired = TokenService::AcquireDirect(tokens, actor, item);
      if (!acquired.ok()) {
        ++denied;  // someone else holds it: skip (no conflicting write!)
        continue;
      }
      ++granted;
      holding[actor].insert(item);
      ASSERT_TRUE(
          replicas[actor]->Update(item, "v" + std::to_string(step)).ok());
    } else if (dice < 0.8) {
      release_all(actor);
    } else {
      NodeId peer = static_cast<NodeId>(rng.Uniform(kNodes));
      if (peer != actor) {
        ASSERT_TRUE(PropagateOnce(*replicas[peer], *replicas[actor]).ok());
      }
    }
  }
  for (NodeId i = 0; i < kNodes; ++i) release_all(i);

  EXPECT_GT(denied, 0);   // contention actually happened
  EXPECT_GT(granted, 0);  // and so did guarded writes
  EXPECT_EQ(conflicts.count(), 0u);
  for (auto& r : replicas) EXPECT_TRUE(r->CheckInvariants().ok());
}

}  // namespace
}  // namespace epidemic::tokens
