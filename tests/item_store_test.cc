#include "storage/item_store.h"

#include <gtest/gtest.h>

namespace epidemic {
namespace {

TEST(ItemStoreTest, StartsEmpty) {
  ItemStore store(3);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.num_nodes(), 3u);
  EXPECT_EQ(store.Find("x"), nullptr);
}

TEST(ItemStoreTest, GetOrCreateMakesFreshReplica) {
  ItemStore store(3);
  Item& item = store.GetOrCreate("x");
  EXPECT_EQ(item.name, "x");
  EXPECT_EQ(item.id, 0u);
  EXPECT_EQ(item.value, "");
  EXPECT_EQ(item.ivv, VersionVector(3));  // zero IVV per §3
  EXPECT_EQ(item.p.size(), 3u);
  for (LogRecord* slot : item.p) EXPECT_EQ(slot, nullptr);
  EXPECT_FALSE(item.is_selected);
  EXPECT_FALSE(item.HasAux());
}

TEST(ItemStoreTest, GetOrCreateIsIdempotent) {
  ItemStore store(2);
  Item& a = store.GetOrCreate("x");
  a.value = "hello";
  Item& b = store.GetOrCreate("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value, "hello");
  EXPECT_EQ(store.size(), 1u);
}

TEST(ItemStoreTest, DenseIdsInCreationOrder) {
  ItemStore store(2);
  EXPECT_EQ(store.GetOrCreate("a").id, 0u);
  EXPECT_EQ(store.GetOrCreate("b").id, 1u);
  EXPECT_EQ(store.GetOrCreate("c").id, 2u);
  EXPECT_EQ(store.GetOrCreate("b").id, 1u);  // stable
}

TEST(ItemStoreTest, FindByName) {
  ItemStore store(2);
  store.GetOrCreate("x").value = "v";
  Item* found = store.Find("x");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value, "v");
  EXPECT_EQ(store.Find("y"), nullptr);

  const ItemStore& cstore = store;
  ASSERT_NE(cstore.Find("x"), nullptr);
  EXPECT_EQ(cstore.Find("y"), nullptr);
}

TEST(ItemStoreTest, GetById) {
  ItemStore store(2);
  store.GetOrCreate("a");
  store.GetOrCreate("b");
  EXPECT_EQ(store.Get(1).name, "b");
}

TEST(ItemStoreTest, IterationInCreationOrder) {
  ItemStore store(1);
  store.GetOrCreate("c");
  store.GetOrCreate("a");
  std::vector<std::string> names;
  for (const auto& item : store) names.push_back(item->name);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "c");
  EXPECT_EQ(names[1], "a");
}

TEST(ItemTest, UserValuePrefersAuxCopy) {
  ItemStore store(2);
  Item& item = store.GetOrCreate("x");
  item.value = "regular";
  item.ivv.Increment(0);
  EXPECT_EQ(item.UserValue(), "regular");
  EXPECT_EQ(item.UserIvv(), item.ivv);

  item.aux = std::make_unique<AuxCopy>();
  item.aux->value = "aux";
  item.aux->ivv = VersionVector(2);
  item.aux->ivv.Increment(1);
  EXPECT_TRUE(item.HasAux());
  EXPECT_EQ(item.UserValue(), "aux");
  EXPECT_EQ(item.UserIvv(), item.aux->ivv);

  item.aux.reset();
  EXPECT_EQ(item.UserValue(), "regular");
}

TEST(ItemStoreTest, ManyItems) {
  ItemStore store(4);
  for (int i = 0; i < 1000; ++i) {
    store.GetOrCreate("item" + std::to_string(i));
  }
  EXPECT_EQ(store.size(), 1000u);
  EXPECT_EQ(store.Find("item999")->id, 999u);
}

}  // namespace
}  // namespace epidemic
