// Lint fixture: the compliant twin of bad_task_capture.cc. epilint_ast.py
// must report nothing here: Post captures only by value, and the
// by-reference captures ride on Execute, which joins before returning.
// Self-contained (no repo includes) so libclang parses it with -std=c++17.

namespace fixture {

struct ShardToken {
  unsigned long shard = 0;
};

class ShardScheduler {
 public:
  template <typename Fn>
  void Post(unsigned long shard, bool mutates, Fn fn) {
    fn(ShardToken{shard});
    (void)mutates;
  }

  template <typename Fn>
  void Execute(unsigned long shard, bool mutates, Fn fn) {
    fn(ShardToken{shard});
    (void)mutates;
  }
};

struct Counters {
  unsigned long posted = 0;
};

int SafeTasks(ShardScheduler& sched, Counters* counters) {
  int local = 0;
  // OK: Post captures the pointer by value; the pointee outlives the task
  // by the caller's contract, not via a dangling stack reference.
  sched.Post(0, /*mutates=*/true,
             [counters](const ShardToken&) { ++counters->posted; });
  // OK: Execute joins, so referencing the live frame is safe and idiomatic.
  sched.Execute(1, /*mutates=*/true,
                [&](const ShardToken&) { ++local; });
  return local;
}

}  // namespace fixture
