// Lint fixture: memory_order_relaxed uses with no rationale comment.
// epilint_ast.py must report relaxed-atomic-rationale twice (this rule is
// lexical and runs even without libclang). Never linked.

#include <atomic>

namespace fixture {

inline unsigned long BumpAndRead(std::atomic<unsigned long>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);  // BAD: no rationale
  return counter.load(std::memory_order_relaxed);   // BAD: no rationale
}

}  // namespace fixture
