// Capability fixture: this TU MUST FAIL to compile under
//   clang++ -fsyntax-only -std=c++20 -Wthread-safety \
//           -Werror=thread-safety -DEPIDEMIC_CHECK_SHARD_CONTEXT=1
// because it calls REQUIRES_SHARD_CONTEXT'd Replica mutators without
// holding the shard-context capability — exactly the off-owner call chain
// the annotations exist to reject. tests/CMakeLists.txt registers it as a
// WILL_FAIL syntax-only test on Clang; gcc builds never compile it.

#include "core/replica.h"

int main() {
  epidemic::Replica replica(0, 3);
  // Neither a scheduler token nor AssertShardContextHeld() in sight:
  // clang's thread-safety analysis must reject both calls.
  const epidemic::Status update = replica.Update("item", "value");
  const epidemic::Status removed = replica.Delete("item");
  return (update.ok() && removed.ok()) ? 0 : 1;
}
