// Lint fixture: every nondeterminism hazard the rule must catch, plus one
// correctly waived engine (whose waiver must NOT be reported as stale).
// protocol_lint.py must report nondeterminism exactly four times here:
// host entropy, wall clock, C-library RNG, pointer-keyed container.
// Never compiled.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <unordered_map>

namespace fixture {

uint64_t HostEntropy() {
  std::random_device rd;
  return rd();
}

uint64_t WallClock() {
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

int CLibraryRng() { return rand(); }

// Iteration order follows allocation addresses — differs run to run.
std::unordered_map<void*, int> g_by_address;

// NOLINT-PROTOCOL(nondeterminism): fixture's exemplar of a reasoned waiver —
// seeded with a fixed constant, reproducible across runs.
std::mt19937 g_waived_engine(42);

}  // namespace fixture
