// Lint fixture (never compiled): the striped shard-lock shape the
// shard-owner scheduler retired. Every hazard sits on its own line so the
// shard-lock-outside-runtime rule's report can be asserted precisely; the
// un-annotated mutexes additionally trip unguarded-mutex, as any real
// relapse would.
#ifndef TESTS_TESTDATA_LINT_BAD_SHARD_LOCK_H_
#define TESTS_TESTDATA_LINT_BAD_SHARD_LOCK_H_

#include <cstddef>
#include <memory>

#include "common/thread_annotations.h"

namespace epidemic {

class StripedShardedThing {
 public:
  void Update(size_t shard) {
    MutexLock lock(shard_mu_[shard]);
  }

 private:
  std::unique_ptr<Mutex[]> shard_mu_;
  Mutex shard_state_mu_;
};

}  // namespace epidemic

#endif  // TESTS_TESTDATA_LINT_BAD_SHARD_LOCK_H_
