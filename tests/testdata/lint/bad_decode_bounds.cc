// Lint fixture: decode-bounds-discipline violations. The file name
// contains "decode_bounds", so epilint_ast.py treats it as a decode TU.
// Expected: 3 findings — pointer arithmetic, raw-pointer subscript,
// memcpy with an unchecked length.

#include <cstddef>
#include <cstring>

// A hand-rolled frame decoder that trusts its own offset math: every read
// below is one forged length away from walking off the end of `data`.
unsigned BadDecode(const unsigned char* data, std::size_t size) {
  if (size < 2) return 0;
  std::size_t len = *data;
  const unsigned char* body = data + 1;  // pointer arithmetic

  unsigned sum = 0;
  for (std::size_t i = 0; i < len; ++i) {
    sum += body[i];  // subscript on a raw pointer, len unchecked
  }

  unsigned char scratch[16];
  std::memcpy(scratch, body, len);  // unchecked length
  return sum + scratch[0];
}
