// Lint fixture (never compiled): both ways the fan-out serve cache's
// discipline can rot (DESIGN.md §14). The slot holds its frame through a
// MUTABLE shared_ptr — anyone holding the pointer can scribble on a frame
// concurrent serves are reading — and the insert happens with no
// MutationEpoch() re-check, so a frame built while a write landed (mixing
// shard states from two epochs) would be published as if it were a
// consistent snapshot. Each hazard sits on its own line so the
// serve-cache-discipline reports can be asserted precisely.
#ifndef TESTS_TESTDATA_LINT_BAD_SERVE_CACHE_H_
#define TESTS_TESTDATA_LINT_BAD_SERVE_CACHE_H_

#include <memory>
#include <string>
#include <vector>

namespace epidemic {

struct CachedServeFrame {
  uint64_t digest = 0;
  uint64_t epoch = 0;
  std::vector<std::string> parts;
};

class SloppyServeCache {
 public:
  void ServeMiss(uint64_t digest) {
    auto entry = std::make_shared<CachedServeFrame>();
    entry->digest = digest;
    // No epoch sample before the build, no equality re-check here:
    InsertServeCache(entry);
  }

 private:
  void InsertServeCache(std::shared_ptr<CachedServeFrame> entry) {
    slot_ = entry;
  }

  std::shared_ptr<CachedServeFrame> slot_;
};

}  // namespace epidemic

#endif  // TESTS_TESTDATA_LINT_BAD_SERVE_CACHE_H_
