// Lint fixture: the compliant twin of bad_seqlock_read.cc — the read
// section only copies into locals, and all side effects (the hit counter,
// publishing to *out) happen after Validate succeeds. epilint_ast.py must
// report nothing. Self-contained (no repo includes), parsed with -std=c++17.

namespace fixture {

struct OptimisticVersion {
  unsigned long ReadBegin() const { return 2; }
  bool Validate(unsigned long sample) const { return sample == 2; }
};

class Cache {
 public:
  bool Lookup(int* out) {
    const unsigned long sample = version_.ReadBegin();
    const int copied = payload_;  // OK: buffered into a local
    if (!version_.Validate(sample)) {
      return false;
    }
    hits_ = hits_ + 1;  // OK: committed only after validation
    *out = copied;
    return true;
  }

 private:
  OptimisticVersion version_;
  unsigned long hits_ = 0;
  int payload_ = 0;
};

}  // namespace fixture
