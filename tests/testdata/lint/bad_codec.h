// Lint fixture: a wire enum that reuses tag 3. protocol_lint.py must
// report wire-tag-duplicate for kOobRequestV2. Never include this file.
#ifndef EPIDEMIC_TESTS_TESTDATA_LINT_BAD_CODEC_H_
#define EPIDEMIC_TESTS_TESTDATA_LINT_BAD_CODEC_H_

#include <cstdint>

namespace epidemic::lint_fixture {

enum class MessageType : uint8_t {
  kPropagationRequest = 1,
  kPropagationResponse = 2,
  kOobRequest = 3,
  kOobRequestV2 = 3,  // duplicate: reuses an existing wire tag
  kOobResponse = 4,
};

}  // namespace epidemic::lint_fixture

#endif  // EPIDEMIC_TESTS_TESTDATA_LINT_BAD_CODEC_H_
