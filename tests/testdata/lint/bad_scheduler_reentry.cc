// Lint fixture: a task body that calls back into the scheduler. The task
// already runs behind its shard gate, so re-entry self-deadlocks on the
// inline fast path or breaks the drain-then-release invariant.
// epilint_ast.py must report scheduler-reentry twice — for the nested
// Execute and the nested Post. Self-contained (no repo includes) so
// libclang parses it with -std=c++17. Never linked.

namespace fixture {

struct ShardToken {
  unsigned long shard = 0;
};

class ShardScheduler {
 public:
  template <typename Fn>
  void Execute(unsigned long shard, bool mutates, Fn fn) {
    fn(ShardToken{shard});
    (void)mutates;
  }

  template <typename Fn>
  void Post(unsigned long shard, bool mutates, Fn fn) {
    fn(ShardToken{shard});
    (void)mutates;
  }
};

void ReentrantTask(ShardScheduler& sched, int* cell) {
  sched.Execute(0, /*mutates=*/true, [&sched, cell](const ShardToken&) {
    *cell = 1;
    // BAD: synchronous re-entry from inside a task — deadlocks when the
    // outer task holds the gate the inner Execute needs.
    sched.Execute(1, /*mutates=*/true,
                  [cell](const ShardToken&) { *cell = 2; });
    // BAD: even fire-and-forget re-entry violates the reentry contract.
    sched.Post(2, /*mutates=*/false, [](const ShardToken&) {});
  });
}

}  // namespace fixture
