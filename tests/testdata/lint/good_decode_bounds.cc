// Lint fixture: decode-bounds-discipline compliant decoding — must
// report nothing. Self-contained (no repo includes), parsed with
// -std=c++17. The file name contains "decode_bounds", so the rule runs;
// everything below either routes reads through a bounds-checked cursor
// (the real code uses common/bytes.h's ByteReader) or carries a waiver.

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

// Stand-in for ByteReader: every read checks remaining() first and
// advances by construction, so no caller ever does offset math.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool GetU8(unsigned char* out) {
    if (data_.size() < pos_ + 1) return false;
    *out = static_cast<unsigned char>(data_[pos_]);
    pos_ += 1;
    return true;
  }

  bool GetBytes(std::size_t n, std::string_view* out) {
    if (data_.size() - pos_ < n) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

unsigned GoodDecode(std::string_view frame) {
  Cursor cur(frame);
  unsigned char len = 0;
  if (!cur.GetU8(&len)) return 0;
  std::string_view body;
  if (!cur.GetBytes(len, &body)) return 0;

  unsigned sum = 0;
  for (char c : body) sum += static_cast<unsigned char>(c);

  // Copying out of an already-bounds-checked view is safe, and the waiver
  // records why the raw call is acceptable here.
  char scratch[256];
  // NOLINT-PROTOCOL(decode-bounds-discipline): body.size() <= 255 was
  // established by GetBytes's bounds check against the frame.
  std::memcpy(scratch, body.data(), body.size());
  return sum + static_cast<unsigned char>(scratch[0]);
}
