// Lint fixture: the compliant twin of bad_scheduler_reentry.cc. The caller
// sequences scheduler calls from OUTSIDE any task body — each task runs to
// completion before the next is submitted, so epilint_ast.py must report
// nothing. Self-contained (no repo includes), parsed with -std=c++17.

namespace fixture {

struct ShardToken {
  unsigned long shard = 0;
};

class ShardScheduler {
 public:
  template <typename Fn>
  void Execute(unsigned long shard, bool mutates, Fn fn) {
    fn(ShardToken{shard});
    (void)mutates;
  }

  template <typename Fn>
  void Post(unsigned long shard, bool mutates, Fn fn) {
    fn(ShardToken{shard});
    (void)mutates;
  }
};

void SequencedTasks(ShardScheduler& sched, int* cell) {
  // OK: the follow-up work is decided after the first task joined; nothing
  // re-enters the scheduler from behind a shard gate.
  sched.Execute(0, /*mutates=*/true,
                [cell](const ShardToken&) { *cell = 1; });
  sched.Execute(1, /*mutates=*/true,
                [cell](const ShardToken&) { *cell = 2; });
  sched.Post(2, /*mutates=*/false, [](const ShardToken&) {});
}

}  // namespace fixture
