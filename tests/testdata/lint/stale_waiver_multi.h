// Lint fixture: a waiver naming TWO rules where only one still fires.
// protocol_lint.py must report stale-waiver with the "narrow the waiver"
// message naming exactly the dead rule (nondeterminism), while the live
// rule (unguarded-mutex) stays suppressed. Never compiled.

#ifndef TESTS_TESTDATA_LINT_STALE_WAIVER_MULTI_H_
#define TESTS_TESTDATA_LINT_STALE_WAIVER_MULTI_H_

#include <mutex>

class PartiallyExcusedThing {
 public:
  int value() const {
    // NOLINT-PROTOCOL(unguarded-mutex, nondeterminism): the raw mutex below
    // is legacy third-party glue; the rand() seed this also excused was
    // deleted long ago, so the second rule is now dead weight.
    std::lock_guard<std::mutex> lock(mu_);
    return value_;
  }

 private:
  // NOLINT-PROTOCOL(unguarded-mutex, nondeterminism): same stale pair on
  // the declaration itself.
  mutable std::mutex mu_;
  int value_ = 0;
};

#endif  // TESTS_TESTDATA_LINT_STALE_WAIVER_MULTI_H_
