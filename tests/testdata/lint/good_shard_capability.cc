// Capability fixture: the compliant twin of bad_shard_capability.cc — the
// single-owner escape hatch asserts the shard-context capability before
// touching the replica, so this TU MUST compile clean under
//   clang++ -fsyntax-only -std=c++20 -Wthread-safety \
//           -Werror=thread-safety -DEPIDEMIC_CHECK_SHARD_CONTEXT=1
// tests/CMakeLists.txt registers it as a must-pass syntax-only test on
// Clang; gcc builds never compile it.

#include "core/replica.h"

int main() {
  epidemic::Replica replica(0, 3);
  // Single-owner escape: main() is this process's only thread.
  epidemic::AssertShardContextHeld();
  const epidemic::Status update = replica.Update("item", "value");
  const epidemic::Status removed = replica.Delete("item");
  return (update.ok() && removed.ok()) ? 0 : 1;
}
