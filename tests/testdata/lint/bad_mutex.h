// Lint fixture: locking that dodges the thread-safety annotations.
// protocol_lint.py must report unguarded-mutex twice — once for the raw
// std::mutex, once for the annotated Mutex that guards nothing. Never
// include this file.
#ifndef EPIDEMIC_TESTS_TESTDATA_LINT_BAD_MUTEX_H_
#define EPIDEMIC_TESTS_TESTDATA_LINT_BAD_MUTEX_H_

#include <mutex>

#include "common/thread_annotations.h"

namespace epidemic::lint_fixture {

class BadServer {
 public:
  int Get() const {
    std::lock_guard<std::mutex> lock(raw_mu_);
    return value_;
  }

 private:
  mutable std::mutex raw_mu_;  // raw std::mutex: invisible to -Wthread-safety
  Mutex orphan_mu_;            // annotated mutex, but nothing says GUARDED_BY it
  int value_ = 0;
};

}  // namespace epidemic::lint_fixture

#endif  // EPIDEMIC_TESTS_TESTDATA_LINT_BAD_MUTEX_H_
