// Lint fixture: side effects inside an optimistic read section. Between
// ReadBegin and Validate the snapshot is unvalidated and may be torn, so
// writing members or retaining member addresses there is a bug.
// epilint_ast.py must report seqlock-read-discipline twice — once for the
// member write, once for the address-of. Self-contained (no repo
// includes) so libclang parses it with -std=c++17. Never linked.

namespace fixture {

struct OptimisticVersion {
  unsigned long ReadBegin() const { return 2; }
  bool Validate(unsigned long sample) const { return sample == 2; }
};

class Cache {
 public:
  bool Lookup(int* out) {
    const unsigned long sample = version_.ReadBegin();
    hits_ = hits_ + 1;                // BAD: member write before Validate
    const int* retained = &payload_;  // BAD: member address may dangle
    *out = *retained;
    return version_.Validate(sample);
  }

 private:
  OptimisticVersion version_;
  unsigned long hits_ = 0;
  int payload_ = 0;
};

}  // namespace fixture
