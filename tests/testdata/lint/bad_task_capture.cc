// Lint fixture: fire-and-forget tasks capturing stack frames by reference.
// epilint_ast.py must report task-capture-lifetime twice — once for the
// blanket [&], once for the named [&counter]. Self-contained on purpose:
// libclang parses this with nothing but -std=c++17, so the fixture works
// without the repo's include paths or a compilation database. Never linked.

namespace fixture {

struct ShardToken {
  unsigned long shard = 0;
};

class ShardScheduler {
 public:
  // Post is fire-and-forget: the task may run after the caller returns.
  template <typename Fn>
  void Post(unsigned long shard, bool mutates, Fn fn) {
    fn(ShardToken{shard});
    (void)mutates;
  }

  // Execute joins before returning, so reference captures are fine there.
  template <typename Fn>
  void Execute(unsigned long shard, bool mutates, Fn fn) {
    fn(ShardToken{shard});
    (void)mutates;
  }
};

int DanglingPosts(ShardScheduler& sched) {
  int counter = 0;
  sched.Post(0, /*mutates=*/true,
             [&](const ShardToken&) { ++counter; });  // BAD: blanket by-ref
  sched.Post(1, /*mutates=*/true,
             [&counter](const ShardToken&) { ++counter; });  // BAD: named ref
  return counter;  // both tasks may still be queued when this frame dies
}

}  // namespace fixture
