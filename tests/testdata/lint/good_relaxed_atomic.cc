// Lint fixture: the compliant twin of bad_relaxed_atomic.cc — every
// memory_order_relaxed use carries a rationale within the comment window,
// and one exercises the NOLINT-PROTOCOL waiver path. epilint_ast.py must
// report nothing. Never linked.

#include <atomic>

namespace fixture {

inline unsigned long BumpAndRead(std::atomic<unsigned long>& counter) {
  // relaxed: monotonic stats counter, read only for reporting; readers
  // tolerate any eventually-visible value.
  counter.fetch_add(1, std::memory_order_relaxed);
  return counter.load(std::memory_order_relaxed);  // relaxed: same counter.
}

inline unsigned long Drain(std::atomic<unsigned long>& counter) {
  // NOLINT-PROTOCOL(relaxed-atomic-rationale): fixture exercising the
  // waiver path; real code should prefer an inline rationale comment.
  return counter.exchange(0, std::memory_order_relaxed);
}

}  // namespace fixture
