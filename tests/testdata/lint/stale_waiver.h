// Lint fixture: a waiver naming a rule that fires nowhere near it.
// protocol_lint.py must report it as stale-waiver (and stale-waiver itself
// cannot be waived). Never compiled.

#ifndef TESTS_TESTDATA_LINT_STALE_WAIVER_H_
#define TESTS_TESTDATA_LINT_STALE_WAIVER_H_

// NOLINT-PROTOCOL(unguarded-mutex): left behind after the mutex it excused
// was deleted — the lint must demand this comment be removed.
class FormerlyLockedThing {
 public:
  int value() const { return value_; }

 private:
  int value_ = 0;
};

#endif  // TESTS_TESTDATA_LINT_STALE_WAIVER_H_
