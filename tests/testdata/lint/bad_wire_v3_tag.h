// Lint fixture: wire-tag-v3-range violations in both directions — a *V3
// entry outside the reserved 17-31 range, and a non-V3 entry squatting
// inside it. protocol_lint.py must report both. Never include this file.
#ifndef EPIDEMIC_TESTS_TESTDATA_LINT_BAD_WIRE_V3_TAG_H_
#define EPIDEMIC_TESTS_TESTDATA_LINT_BAD_WIRE_V3_TAG_H_

#include <cstdint>

namespace epidemic::lint_fixture {

enum class MessageType : uint8_t {
  kPropagationRequest = 1,
  kPropagationResponse = 2,
  kShardedPropagationRequestV3 = 12,  // v3 entry below the reserved range
  kNewFancyRequest = 19,              // non-v3 entry inside 17-31
};

}  // namespace epidemic::lint_fixture

#endif  // EPIDEMIC_TESTS_TESTDATA_LINT_BAD_WIRE_V3_TAG_H_
