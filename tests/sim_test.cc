#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "sim/workload.h"

namespace epidemic::sim {
namespace {

// ---------------------------------------------------------------------------
// Event queue.

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::string trace;
  q.At(30, [&] { trace += "c"; });
  q.At(10, [&] { trace += "a"; });
  q.At(20, [&] { trace += "b"; });
  EXPECT_EQ(q.RunAll(), 3u);
  EXPECT_EQ(trace, "abc");
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, EqualTimestampsRunInScheduleOrder) {
  EventQueue q;
  std::string trace;
  for (char c : {'1', '2', '3', '4'}) {
    q.At(5, [&trace, c] { trace += c; });
  }
  q.RunAll();
  EXPECT_EQ(trace, "1234");
}

TEST(EventQueueTest, CallbacksCanScheduleMore) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.After(10, chain);
  };
  q.After(10, chain);
  q.RunAll();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(q.now(), 50);
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.At(10, [&] { ++fired; });
  q.At(20, [&] { ++fired; });
  q.At(30, [&] { ++fired; });
  EXPECT_EQ(q.RunUntil(25), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 25);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunOneOnEmptyQueue) {
  EventQueue q;
  EXPECT_FALSE(q.RunOne());
}

TEST(EventQueueTest, RunAllHonorsEventBudget) {
  EventQueue q;
  int fired = 0;
  std::function<void()> forever = [&] {
    ++fired;
    q.After(1, forever);
  };
  q.After(1, forever);
  EXPECT_EQ(q.RunAll(100), 100u);
  EXPECT_EQ(fired, 100);
}

// ---------------------------------------------------------------------------
// Workload.

TEST(WorkloadTest, DeterministicForSameSeed) {
  WorkloadConfig config;
  config.seed = 5;
  Workload w1(config), w2(config);
  for (int i = 0; i < 50; ++i) {
    Workload::Op a = w1.NextUpdate(4);
    Workload::Op b = w2.NextUpdate(4);
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.item, b.item);
    EXPECT_EQ(a.value, b.value);
  }
}

TEST(WorkloadTest, ValuesAreUniqueAndPadded) {
  WorkloadConfig config;
  config.value_len = 24;
  Workload w(config);
  std::set<std::string> values;
  for (int i = 0; i < 200; ++i) {
    Workload::Op op = w.NextUpdate(3);
    EXPECT_GE(op.value.size(), 24u);
    EXPECT_TRUE(values.insert(op.value).second) << "duplicate " << op.value;
  }
}

TEST(WorkloadTest, SkewedWorkloadTouchesFewItems) {
  WorkloadConfig config;
  config.num_items = 10000;
  config.zipf_s = 1.3;
  Workload w(config);
  std::set<std::string> touched;
  for (int i = 0; i < 1000; ++i) touched.insert(w.NextUpdate(4).item);
  // The paper's target regime: far fewer dirty items than the item count.
  EXPECT_LT(touched.size(), 400u);
}

// ---------------------------------------------------------------------------
// Cluster harness, across all four protocols.

class ClusterProtocolTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ClusterProtocolTest, ConvergesAfterUpdatesWithRingSchedule) {
  ClusterConfig config;
  config.protocol = GetParam();
  config.num_nodes = 4;
  config.peering = Peering::kRing;
  config.workload.num_items = 50;
  config.workload.seed = 11;
  Cluster cluster(config);

  if (GetParam() == ProtocolKind::kOraclePush) {
    // Push-based: only the originator distributes. Drive one node's
    // updates and push rounds.
    ASSERT_TRUE(cluster.UpdateAt(0, "x", "v").ok());
    for (NodeId p = 1; p < 4; ++p) {
      ASSERT_TRUE(cluster.SyncPair(0, p).ok());
    }
    EXPECT_TRUE(cluster.IsConverged());
    return;
  }

  // Conflict-free workload (each node writes its own key range): every
  // pull-based protocol must converge under the ring schedule. Conflicting
  // items are *supposed* to stay divergent until resolved, so they are not
  // part of a convergence test.
  for (NodeId node = 0; node < 4; ++node) {
    for (int k = 0; k < 5; ++k) {
      ASSERT_TRUE(cluster
                      .UpdateAt(node,
                                "n" + std::to_string(node) + "-k" +
                                    std::to_string(k),
                                "v" + std::to_string(node * 10 + k))
                      .ok());
    }
  }
  auto rounds = cluster.RunUntilConverged(/*max_rounds=*/20);
  ASSERT_TRUE(rounds.ok()) << rounds.status().ToString();
  EXPECT_GT(*rounds, 0u);
  EXPECT_TRUE(cluster.IsConverged());
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ClusterProtocolTest,
    ::testing::Values(ProtocolKind::kEpidemicDbvv, ProtocolKind::kLotus,
                      ProtocolKind::kOraclePush, ProtocolKind::kPerItemVv,
                      ProtocolKind::kWuuBernstein, ProtocolKind::kMerkle),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      std::string name(ProtocolKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ClusterTest, RandomPeeringAlsoConverges) {
  ClusterConfig config;
  config.protocol = ProtocolKind::kEpidemicDbvv;
  config.num_nodes = 8;
  config.peering = Peering::kRandom;
  config.seed = 3;
  config.workload.seed = 3;
  Cluster cluster(config);
  for (NodeId node = 0; node < 8; ++node) {
    for (int k = 0; k < 4; ++k) {
      ASSERT_TRUE(cluster
                      .UpdateAt(node,
                                "n" + std::to_string(node) + "-k" +
                                    std::to_string(k),
                                "v")
                      .ok());
    }
  }
  auto rounds = cluster.RunUntilConverged(100);
  ASSERT_TRUE(rounds.ok());
  EXPECT_TRUE(cluster.IsConverged());
}

TEST(ClusterTest, CrashedNodeSkipsSyncAndLagsBehind) {
  ClusterConfig config;
  config.protocol = ProtocolKind::kEpidemicDbvv;
  config.num_nodes = 3;
  Cluster cluster(config);

  cluster.Crash(2);
  EXPECT_FALSE(cluster.IsUp(2));
  EXPECT_EQ(cluster.LiveCount(), 2u);
  ASSERT_TRUE(cluster.UpdateAt(0, "x", "v").ok());
  ASSERT_TRUE(cluster.SyncPair(1, 0).ok());
  EXPECT_TRUE(cluster.SyncPair(2, 0).IsUnavailable());
  EXPECT_TRUE(cluster.SyncPair(1, 2).IsUnavailable());

  // Live nodes converge among themselves.
  EXPECT_TRUE(cluster.IsConverged());

  // After recovery the lagging node catches up from either survivor.
  cluster.Recover(2);
  EXPECT_FALSE(cluster.IsConverged());
  ASSERT_TRUE(cluster.SyncPair(2, 1).ok());
  EXPECT_TRUE(cluster.IsConverged());
}

TEST(ClusterTest, UpdateAtDownNodeFails) {
  ClusterConfig config;
  Cluster cluster(config);
  cluster.Crash(1);
  EXPECT_TRUE(cluster.UpdateAt(1, "x", "v").IsUnavailable());
}

TEST(ClusterTest, SelfSyncRejected) {
  Cluster cluster(ClusterConfig{});
  EXPECT_TRUE(cluster.SyncPair(0, 0).IsInvalidArgument());
}

TEST(ClusterTest, TotalStatsAggregateAcrossNodes) {
  ClusterConfig config;
  config.protocol = ProtocolKind::kEpidemicDbvv;
  config.num_nodes = 3;
  Cluster cluster(config);
  cluster.ApplyUpdates(10);
  cluster.SyncRound();
  SyncStats total = cluster.TotalSyncStats();
  EXPECT_GT(total.exchanges, 0u);
  EXPECT_GT(total.control_bytes, 0u);
}

TEST(ClusterTest, ConvergedClusterReportsZeroRounds) {
  Cluster cluster(ClusterConfig{});
  auto rounds = cluster.RunUntilConverged(5);
  ASSERT_TRUE(rounds.ok());
  EXPECT_EQ(*rounds, 0u);
}

TEST(ClusterTest, NonConvergenceTimesOut) {
  // An Oracle cluster where a non-originator can never obtain the update
  // because the originator is down: RunUntilConverged must time out.
  ClusterConfig config;
  config.protocol = ProtocolKind::kOraclePush;
  config.num_nodes = 3;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.UpdateAt(0, "x", "v").ok());
  ASSERT_TRUE(cluster.SyncPair(0, 1).ok());  // only node 1 got it
  cluster.Crash(0);
  auto rounds = cluster.RunUntilConverged(10);
  EXPECT_TRUE(rounds.status().IsTimedOut());
  EXPECT_EQ(cluster.CountDivergentFrom(1), 1u);  // node 2 still obsolete
}

TEST(ClusterTest, EpidemicForwardsAfterOriginatorCrash) {
  // Same scenario as above but with the paper's protocol: node 2 catches
  // up from node 1 even though the originator is gone (§8.2 contrast).
  ClusterConfig config;
  config.protocol = ProtocolKind::kEpidemicDbvv;
  config.num_nodes = 3;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.UpdateAt(0, "x", "v").ok());
  ASSERT_TRUE(cluster.SyncPair(1, 0).ok());  // node 1 pulled it
  cluster.Crash(0);
  ASSERT_TRUE(cluster.SyncPair(2, 1).ok());  // node 2 pulls from node 1
  EXPECT_TRUE(cluster.IsConverged());
}

TEST(ClusterTest, ConflictCountsSurface) {
  ClusterConfig config;
  config.protocol = ProtocolKind::kEpidemicDbvv;
  config.num_nodes = 2;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.UpdateAt(0, "x", "A").ok());
  ASSERT_TRUE(cluster.UpdateAt(1, "x", "B").ok());
  ASSERT_TRUE(cluster.SyncPair(0, 1).ok());
  EXPECT_EQ(cluster.TotalConflicts(), 1u);
}

TEST(ClusterTest, SeveredLinkBlocksSyncPair) {
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster cluster(config);
  EXPECT_TRUE(cluster.IsLinkUp(0, 1));
  cluster.SetLinkUp(0, 1, false);
  EXPECT_FALSE(cluster.IsLinkUp(0, 1));
  EXPECT_FALSE(cluster.IsLinkUp(1, 0));  // symmetric
  ASSERT_TRUE(cluster.UpdateAt(0, "x", "v").ok());
  EXPECT_TRUE(cluster.SyncPair(1, 0).IsUnavailable());
  // The indirect route still works: 2 pulls from 0, then 1 pulls from 2.
  ASSERT_TRUE(cluster.SyncPair(2, 0).ok());
  ASSERT_TRUE(cluster.SyncPair(1, 2).ok());
  EXPECT_TRUE(cluster.IsConverged());
}

TEST(ClusterTest, PartitionDivergesThenHealsAndConverges) {
  ClusterConfig config;
  config.protocol = ProtocolKind::kEpidemicDbvv;
  config.num_nodes = 6;
  config.peering = Peering::kRandom;
  config.seed = 31;
  Cluster cluster(config);

  cluster.Partition({0, 1, 2}, {3, 4, 5});
  ASSERT_TRUE(cluster.UpdateAt(0, "left", "L").ok());
  ASSERT_TRUE(cluster.UpdateAt(3, "right", "R").ok());
  for (int round = 0; round < 10; ++round) cluster.SyncRound();
  // Each side converged internally but not across the cut.
  EXPECT_FALSE(cluster.IsConverged());
  EXPECT_TRUE(cluster.node(2).ClientRead("left").ok());
  EXPECT_FALSE(cluster.node(2).ClientRead("right").ok());
  EXPECT_TRUE(cluster.node(5).ClientRead("right").ok());

  cluster.HealAllLinks();
  auto rounds = cluster.RunUntilConverged(50);
  ASSERT_TRUE(rounds.ok()) << rounds.status().ToString();
  EXPECT_EQ(*cluster.node(5).ClientRead("left"), "L");
  EXPECT_EQ(*cluster.node(0).ClientRead("right"), "R");
}

TEST(ClusterTest, RingStallsAcrossPartitionRandomRoutesAround) {
  // With ring peering, severing one ring edge can stall propagation across
  // it; random peering routes around. Documents why the schedule matters
  // for Theorem 5's transitivity premise.
  ClusterConfig config;
  config.num_nodes = 4;
  config.peering = Peering::kRing;
  Cluster cluster(config);
  // Ring pulls go i <- i+1, so node 1's updates reach the others only
  // through node 0. Severing 0<->1 breaks the sole dissemination path: the
  // fixed ring schedule no longer satisfies Theorem 5's "everyone
  // propagates transitively from everyone" premise, and the update stalls.
  cluster.SetLinkUp(0, 1, false);
  ASSERT_TRUE(cluster.UpdateAt(1, "x", "v").ok());
  for (int round = 0; round < 8; ++round) cluster.SyncRound();
  EXPECT_FALSE(cluster.node(0).ClientRead("x").ok());
  EXPECT_FALSE(cluster.node(3).ClientRead("x").ok());

  // A random schedule reaches every live pair eventually and heals.
  ClusterConfig random_config = config;
  random_config.peering = Peering::kRandom;
  random_config.seed = 5;
  Cluster random_cluster(random_config);
  random_cluster.SetLinkUp(0, 1, false);
  ASSERT_TRUE(random_cluster.UpdateAt(1, "x", "v").ok());
  auto rounds = random_cluster.RunUntilConverged(60);
  ASSERT_TRUE(rounds.ok());
  EXPECT_EQ(*random_cluster.node(0).ClientRead("x"), "v");
}

TEST(ClusterTest, MakeNodeProducesRequestedProtocol) {
  for (ProtocolKind kind :
       {ProtocolKind::kEpidemicDbvv, ProtocolKind::kLotus,
        ProtocolKind::kOraclePush, ProtocolKind::kPerItemVv,
        ProtocolKind::kWuuBernstein, ProtocolKind::kMerkle}) {
    auto node = MakeNode(kind, 0, 2);
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->protocol_name(), ProtocolKindName(kind));
  }
}

}  // namespace
}  // namespace epidemic::sim
