#include "log/log_vector.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace epidemic {
namespace {

// Collects (item, seq) pairs head-to-tail for assertions.
std::vector<std::pair<ItemId, UpdateCount>> Contents(const OriginLog& log) {
  std::vector<std::pair<ItemId, UpdateCount>> out;
  for (const LogRecord* r = log.head(); r != nullptr; r = r->next) {
    out.emplace_back(r->item, r->seq);
  }
  return out;
}

class OriginLogTest : public ::testing::Test {
 protected:
  // P(x) slots for items 0..9 for this origin.
  std::vector<LogRecord*> p_ = std::vector<LogRecord*>(10, nullptr);
  OriginLog log_;
};

TEST_F(OriginLogTest, StartsEmpty) {
  EXPECT_TRUE(log_.empty());
  EXPECT_EQ(log_.size(), 0u);
  EXPECT_EQ(log_.head(), nullptr);
  EXPECT_EQ(log_.tail(), nullptr);
}

TEST_F(OriginLogTest, AppendsInOrder) {
  log_.AddLogRecord(0, 1, &p_[0]);
  log_.AddLogRecord(1, 2, &p_[1]);
  log_.AddLogRecord(2, 3, &p_[2]);
  EXPECT_EQ(log_.size(), 3u);
  auto contents = Contents(log_);
  ASSERT_EQ(contents.size(), 3u);
  EXPECT_EQ(contents[0], (std::pair<ItemId, UpdateCount>{0, 1}));
  EXPECT_EQ(contents[2], (std::pair<ItemId, UpdateCount>{2, 3}));
}

TEST_F(OriginLogTest, SlotPointsAtNewestRecord) {
  log_.AddLogRecord(5, 1, &p_[5]);
  ASSERT_NE(p_[5], nullptr);
  EXPECT_EQ(p_[5]->item, 5u);
  EXPECT_EQ(p_[5]->seq, 1u);
  EXPECT_EQ(p_[5], log_.tail());
}

// Reproduces Fig. 1: log [y:1, x:3, z:4], adding (x,5) removes (x,3) and
// appends (x,5) at the tail.
TEST_F(OriginLogTest, Figure1LatestRecordReplacement) {
  const ItemId y = 0, x = 1, z = 2;
  log_.AddLogRecord(y, 1, &p_[y]);
  log_.AddLogRecord(x, 3, &p_[x]);
  log_.AddLogRecord(z, 4, &p_[z]);
  log_.AddLogRecord(x, 5, &p_[x]);

  auto contents = Contents(log_);
  ASSERT_EQ(contents.size(), 3u);
  EXPECT_EQ(contents[0], (std::pair<ItemId, UpdateCount>{y, 1}));
  EXPECT_EQ(contents[1], (std::pair<ItemId, UpdateCount>{z, 4}));
  EXPECT_EQ(contents[2], (std::pair<ItemId, UpdateCount>{x, 5}));
  EXPECT_EQ(p_[x]->seq, 5u);
}

TEST_F(OriginLogTest, ReplacingHeadRecord) {
  log_.AddLogRecord(0, 1, &p_[0]);
  log_.AddLogRecord(1, 2, &p_[1]);
  log_.AddLogRecord(0, 3, &p_[0]);  // replaces the head record
  auto contents = Contents(log_);
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents[0], (std::pair<ItemId, UpdateCount>{1, 2}));
  EXPECT_EQ(contents[1], (std::pair<ItemId, UpdateCount>{0, 3}));
  EXPECT_EQ(log_.head()->item, 1u);
}

TEST_F(OriginLogTest, ReplacingOnlyRecord) {
  log_.AddLogRecord(0, 1, &p_[0]);
  log_.AddLogRecord(0, 2, &p_[0]);
  EXPECT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_.head(), log_.tail());
  EXPECT_EQ(log_.head()->seq, 2u);
}

TEST_F(OriginLogTest, AtMostOneRecordPerItem) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    ItemId item = static_cast<ItemId>(rng.Uniform(10));
    log_.AddLogRecord(item, static_cast<UpdateCount>(i + 1), &p_[item]);
  }
  // The bound of §4.2: one record per item, so at most 10.
  EXPECT_LE(log_.size(), 10u);
  std::vector<int> seen(10, 0);
  for (const LogRecord* r = log_.head(); r != nullptr; r = r->next) {
    ++seen[r->item];
  }
  for (int count : seen) EXPECT_LE(count, 1);
}

TEST_F(OriginLogTest, RemoveMiddleRecord) {
  log_.AddLogRecord(0, 1, &p_[0]);
  log_.AddLogRecord(1, 2, &p_[1]);
  log_.AddLogRecord(2, 3, &p_[2]);
  log_.Remove(p_[1], &p_[1]);
  EXPECT_EQ(p_[1], nullptr);
  auto contents = Contents(log_);
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents[0].first, 0u);
  EXPECT_EQ(contents[1].first, 2u);
}

TEST_F(OriginLogTest, RemoveAllRecords) {
  log_.AddLogRecord(0, 1, &p_[0]);
  log_.AddLogRecord(1, 2, &p_[1]);
  log_.Remove(p_[0], &p_[0]);
  log_.Remove(p_[1], &p_[1]);
  EXPECT_TRUE(log_.empty());
  EXPECT_EQ(log_.head(), nullptr);
  EXPECT_EQ(log_.tail(), nullptr);
}

TEST_F(OriginLogTest, CollectTailSelectsSuffix) {
  for (ItemId i = 0; i < 5; ++i) {
    log_.AddLogRecord(i, i + 1, &p_[i]);  // seqs 1..5
  }
  std::vector<LogRecord> out;
  EXPECT_EQ(log_.CollectTail(/*after=*/3, &out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 4u);
  EXPECT_EQ(out[1].seq, 5u);
}

TEST_F(OriginLogTest, CollectTailAfterZeroReturnsEverything) {
  for (ItemId i = 0; i < 4; ++i) log_.AddLogRecord(i, i + 1, &p_[i]);
  std::vector<LogRecord> out;
  EXPECT_EQ(log_.CollectTail(0, &out), 4u);
}

TEST_F(OriginLogTest, CollectTailBeyondTailReturnsNothing) {
  for (ItemId i = 0; i < 4; ++i) log_.AddLogRecord(i, i + 1, &p_[i]);
  std::vector<LogRecord> out;
  EXPECT_EQ(log_.CollectTail(100, &out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST_F(OriginLogTest, CollectTailOnEmptyLog) {
  std::vector<LogRecord> out;
  EXPECT_EQ(log_.CollectTail(0, &out), 0u);
}

TEST_F(OriginLogTest, CollectTailAppendsToExistingVector) {
  log_.AddLogRecord(0, 1, &p_[0]);
  std::vector<LogRecord> out(3);
  log_.CollectTail(0, &out);
  EXPECT_EQ(out.size(), 4u);
}

TEST_F(OriginLogTest, MoveConstructorTransfersOwnership) {
  log_.AddLogRecord(0, 1, &p_[0]);
  log_.AddLogRecord(1, 2, &p_[1]);
  OriginLog moved(std::move(log_));
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(log_.size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(moved.head()->item, 0u);
}

TEST(LogVectorTest, OneComponentPerOrigin) {
  LogVector lv(4);
  EXPECT_EQ(lv.num_nodes(), 4u);
  std::vector<LogRecord*> p(4, nullptr);
  lv.ForOrigin(0).AddLogRecord(0, 1, &p[0]);
  lv.ForOrigin(2).AddLogRecord(0, 1, &p[2]);
  lv.ForOrigin(2).AddLogRecord(0, 2, &p[2]);
  EXPECT_EQ(lv.ForOrigin(0).size(), 1u);
  EXPECT_EQ(lv.ForOrigin(1).size(), 0u);
  EXPECT_EQ(lv.ForOrigin(2).size(), 1u);
  EXPECT_EQ(lv.TotalRecords(), 2u);
}

TEST(LogVectorTest, TotalRecordsBoundedByNodesTimesItems) {
  // §4.2: total records ≤ n·N no matter how many updates flow through.
  const size_t n = 3, items = 7;
  LogVector lv(n);
  std::vector<std::vector<LogRecord*>> p(
      n, std::vector<LogRecord*>(items, nullptr));
  Rng rng(7);
  std::vector<UpdateCount> seq(n, 0);
  for (int i = 0; i < 5000; ++i) {
    NodeId origin = static_cast<NodeId>(rng.Uniform(n));
    ItemId item = static_cast<ItemId>(rng.Uniform(items));
    lv.ForOrigin(origin).AddLogRecord(item, ++seq[origin],
                                      &p[origin][item]);
  }
  EXPECT_LE(lv.TotalRecords(), n * items);
}

}  // namespace
}  // namespace epidemic
