#include "core/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/random.h"
#include "core/replica.h"
#include "core/wire.h"

namespace epidemic {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/journal_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

// Runs one full anti-entropy pull from `source` into the journaled `jr`.
Status Pull(Replica& source, JournaledReplica& jr) {
  PropagationRequest req = jr.BuildPropagationRequest();
  PropagationResponse resp = source.HandlePropagationRequest(req);
  return jr.AcceptPropagation(resp);
}

TEST_F(JournalTest, OpenFreshDirectory) {
  auto jr = JournaledReplica::Open(dir_, 0, 3);
  ASSERT_TRUE(jr.ok()) << jr.status().ToString();
  EXPECT_EQ((*jr)->replica().id(), 0u);
  EXPECT_EQ((*jr)->records_since_checkpoint(), 0u);
}

TEST_F(JournalTest, OpenNonDirectoryFails) {
  auto jr = JournaledReplica::Open(dir_ + "/nope", 0, 3);
  EXPECT_TRUE(jr.status().IsInvalidArgument());
}

TEST_F(JournalTest, UpdatesSurviveRestart) {
  {
    auto jr = JournaledReplica::Open(dir_, 0, 2);
    ASSERT_TRUE(jr.ok());
    ASSERT_TRUE((*jr)->Update("x", "v1").ok());
    ASSERT_TRUE((*jr)->Update("y", "v2").ok());
    ASSERT_TRUE((*jr)->Delete("y").ok());
    EXPECT_EQ((*jr)->records_since_checkpoint(), 3u);
  }  // "crash": destructor, no checkpoint

  auto recovered = JournaledReplica::Open(dir_, 0, 2);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*(*recovered)->Read("x"), "v1");
  EXPECT_TRUE((*recovered)->Read("y").status().IsNotFound());
  EXPECT_TRUE((*recovered)->replica().CheckInvariants().ok());
  // Replay reproduces the exact protocol state, not just user-visible data.
  EXPECT_EQ((*recovered)->replica().dbvv().Total(), 3u);
}

TEST_F(JournalTest, PropagationInputsSurviveRestart) {
  Replica peer(1, 2);
  ASSERT_TRUE(peer.Update("remote", "from-peer").ok());

  std::string dbvv_before;
  {
    auto jr = JournaledReplica::Open(dir_, 0, 2);
    ASSERT_TRUE(jr.ok());
    ASSERT_TRUE((*jr)->Update("local", "mine").ok());
    ASSERT_TRUE(Pull(peer, **jr).ok());
    dbvv_before = (*jr)->replica().dbvv().ToString();
  }

  auto recovered = JournaledReplica::Open(dir_, 0, 2);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*(*recovered)->Read("remote"), "from-peer");
  EXPECT_EQ(*(*recovered)->Read("local"), "mine");
  EXPECT_EQ((*recovered)->replica().dbvv().ToString(), dbvv_before);
  // Recovered replica resumes anti-entropy exactly where it stopped: an
  // exchange with the unchanged peer is a no-op.
  peer.ResetStats();
  ASSERT_TRUE(Pull(peer, **recovered).ok());
  EXPECT_EQ(peer.stats().you_are_current_replies, 1u);
}

TEST_F(JournalTest, OobInputsSurviveRestart) {
  Replica peer(1, 2);
  ASSERT_TRUE(peer.Update("hot", "h1").ok());
  {
    auto jr = JournaledReplica::Open(dir_, 0, 2);
    ASSERT_TRUE(jr.ok());
    OobRequest req = (*jr)->BuildOobRequest("hot");
    OobResponse resp = peer.HandleOobRequest(req);
    ASSERT_TRUE((*jr)->AcceptOobResponse(resp).ok());
    ASSERT_TRUE((*jr)->Update("hot", "h2").ok());  // aux update, journaled
  }
  auto recovered = JournaledReplica::Open(dir_, 0, 2);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*(*recovered)->Read("hot"), "h2");
  EXPECT_TRUE((*recovered)->replica().FindItem("hot")->HasAux());
  EXPECT_EQ((*recovered)->replica().aux_log().size(), 1u);
}

TEST_F(JournalTest, V3SegmentInputsSurviveRestart) {
  Replica peer(1, 2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(peer.Update("k" + std::to_string(i), "v" + std::to_string(i))
                    .ok());
  }

  std::string canonical_before;
  {
    auto jr = JournaledReplica::Open(dir_, 0, 2);
    ASSERT_TRUE(jr.ok());
    ASSERT_TRUE((*jr)->Update("local", "mine").ok());
    // A real v3 segment: serve the view at the peer, encode it against the
    // peer's DBVV, and journal-accept the raw body.
    PropagationRequest req = (*jr)->BuildPropagationRequest();
    const PropagationResponseView& view = peer.HandlePropagationView(req);
    std::string body;
    wire::EncodeShardSegmentBodyV3(view, peer.dbvv(), wire::V3SegmentOptions{},
                                   nullptr, &body);
    ASSERT_TRUE((*jr)->AcceptPropagationSegmentV3(body).ok());
    EXPECT_EQ((*jr)->records_since_checkpoint(), 2u);
    canonical_before = (*jr)->replica().CanonicalState();
  }  // "crash": destructor, no checkpoint

  // Replay decodes the stored segment body through the same zero-copy
  // path and must land on the identical protocol state.
  auto recovered = JournaledReplica::Open(dir_, 0, 2);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->replica().CanonicalState(), canonical_before);
  EXPECT_EQ(*(*recovered)->Read("k3"), "v3");
  EXPECT_EQ(*(*recovered)->Read("local"), "mine");
  EXPECT_TRUE((*recovered)->replica().CheckInvariants().ok());
}

TEST_F(JournalTest, CorruptV3SegmentIsRejectedBeforeJournaling) {
  Replica peer(1, 2);
  ASSERT_TRUE(peer.Update("x", "v").ok());
  auto jr = JournaledReplica::Open(dir_, 0, 2);
  ASSERT_TRUE(jr.ok());

  PropagationRequest req = (*jr)->BuildPropagationRequest();
  const PropagationResponseView& view = peer.HandlePropagationView(req);
  std::string body;
  wire::EncodeShardSegmentBodyV3(view, peer.dbvv(), wire::V3SegmentOptions{},
                                 nullptr, &body);
  body[0] = static_cast<char>(body[0] | 0x80);  // unknown flag bit
  EXPECT_FALSE((*jr)->AcceptPropagationSegmentV3(body).ok());
  // Validation happens before the append: the journal holds no record of
  // the rejected body, so recovery can never trip over it.
  EXPECT_EQ((*jr)->records_since_checkpoint(), 0u);
  EXPECT_TRUE((*jr)->Read("x").status().IsNotFound());
}

TEST_F(JournalTest, CheckpointTruncatesJournal) {
  {
    auto jr = JournaledReplica::Open(dir_, 0, 2);
    ASSERT_TRUE(jr.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*jr)->Update("k" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE((*jr)->Checkpoint().ok());
    EXPECT_EQ((*jr)->records_since_checkpoint(), 0u);
    ASSERT_TRUE((*jr)->Update("post", "checkpoint").ok());
    EXPECT_EQ((*jr)->records_since_checkpoint(), 1u);
  }
  auto recovered = JournaledReplica::Open(dir_, 0, 2);
  ASSERT_TRUE(recovered.ok());
  // Snapshot carried the first 20; the journal suffix carried the rest.
  EXPECT_EQ((*recovered)->records_since_checkpoint(), 1u);
  EXPECT_EQ(*(*recovered)->Read("k7"), "v");
  EXPECT_EQ(*(*recovered)->Read("post"), "checkpoint");
  EXPECT_EQ((*recovered)->replica().dbvv().Total(), 21u);
}

TEST_F(JournalTest, WrongIdentityRejectedAfterCheckpoint) {
  {
    auto jr = JournaledReplica::Open(dir_, 0, 2);
    ASSERT_TRUE(jr.ok());
    ASSERT_TRUE((*jr)->Update("x", "v").ok());
    ASSERT_TRUE((*jr)->Checkpoint().ok());
  }
  EXPECT_TRUE(JournaledReplica::Open(dir_, 1, 2).status().IsInvalidArgument());
  EXPECT_TRUE(JournaledReplica::Open(dir_, 0, 5).status().IsInvalidArgument());
}

TEST_F(JournalTest, TornFinalRecordIgnored) {
  {
    auto jr = JournaledReplica::Open(dir_, 0, 2);
    ASSERT_TRUE(jr.ok());
    ASSERT_TRUE((*jr)->Update("x", "v1").ok());
    ASSERT_TRUE((*jr)->Update("y", "v2").ok());
  }
  // Simulate a crash mid-append: chop bytes off the journal tail.
  std::string path = dir_ + "/journal.log";
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);

  auto recovered = JournaledReplica::Open(dir_, 0, 2);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*(*recovered)->Read("x"), "v1");
  // The torn second record is gone, but the replica is consistent.
  EXPECT_TRUE((*recovered)->Read("y").status().IsNotFound());
  EXPECT_TRUE((*recovered)->replica().CheckInvariants().ok());
}

TEST_F(JournalTest, CorruptedMiddleRecordStopsReplayAtGoodPrefix) {
  {
    auto jr = JournaledReplica::Open(dir_, 0, 2);
    ASSERT_TRUE(jr.ok());
    ASSERT_TRUE((*jr)->Update("a", "1").ok());
    ASSERT_TRUE((*jr)->Update("b", "2").ok());
    ASSERT_TRUE((*jr)->Update("c", "3").ok());
  }
  // Flip one byte inside the second record's payload.
  std::string path = dir_ + "/journal.log";
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, size / 2, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);

  auto recovered = JournaledReplica::Open(dir_, 0, 2);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // The prefix before the corrupted record replayed; the rest did not.
  // (The CRC catches the flip no matter which frame byte it hit.)
  EXPECT_EQ(*(*recovered)->Read("a"), "1");
  EXPECT_TRUE((*recovered)->replica().CheckInvariants().ok());
  EXPECT_LT((*recovered)->replica().dbvv().Total(), 3u);
}

TEST_F(JournalTest, RandomizedCrashRecoveryEquivalence) {
  // Mirror every journaled operation on an in-memory twin; at a random
  // point "crash" (drop the JournaledReplica), recover, and compare.
  Rng rng(2024);
  Replica peer(1, 2);
  Replica twin(0, 2);
  {
    auto jr_or = JournaledReplica::Open(dir_, 0, 2);
    ASSERT_TRUE(jr_or.ok());
    JournaledReplica& jr = **jr_or;
    for (int step = 0; step < 120; ++step) {
      double dice = rng.NextDouble();
      if (dice < 0.45) {
        std::string item = "k" + std::to_string(rng.Uniform(6));
        std::string value = "v" + std::to_string(step);
        ASSERT_TRUE(jr.Update(item, value).ok());
        ASSERT_TRUE(twin.Update(item, value).ok());
      } else if (dice < 0.6) {
        std::string item = "k" + std::to_string(rng.Uniform(6));
        ASSERT_TRUE(jr.Delete(item).ok());
        ASSERT_TRUE(twin.Delete(item).ok());
      } else if (dice < 0.8) {
        ASSERT_TRUE(peer.Update("p" + std::to_string(rng.Uniform(4)),
                                "pv" + std::to_string(step))
                        .ok());
      } else {
        PropagationRequest req = jr.BuildPropagationRequest();
        PropagationResponse resp = peer.HandlePropagationRequest(req);
        ASSERT_TRUE(jr.AcceptPropagation(resp).ok());
        ASSERT_TRUE(twin.AcceptPropagation(resp).ok());
      }
      if (step == 60) {
        ASSERT_TRUE(jr.Checkpoint().ok());
      }
    }
  }  // crash

  auto recovered = JournaledReplica::Open(dir_, 0, 2);
  ASSERT_TRUE(recovered.ok());
  const Replica& r = (*recovered)->replica();
  EXPECT_EQ(r.dbvv(), twin.dbvv());
  EXPECT_EQ(r.items().size(), twin.items().size());
  for (const auto& item : twin.items()) {
    const Item* mine = r.FindItem(item->name);
    ASSERT_NE(mine, nullptr) << item->name;
    EXPECT_EQ(mine->value, item->value) << item->name;
    EXPECT_EQ(mine->deleted, item->deleted) << item->name;
    EXPECT_EQ(mine->ivv, item->ivv) << item->name;
  }
  EXPECT_TRUE(r.CheckInvariants().ok());
}

}  // namespace
}  // namespace epidemic
