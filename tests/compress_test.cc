#include "common/compress.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace epidemic {
namespace {

std::string RoundTrip(std::string_view input) {
  auto out = Decompress(Compress(input));
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? *out : "";
}

TEST(CompressTest, EmptyInput) {
  EXPECT_EQ(Compress("").size(), 0u);
  EXPECT_EQ(RoundTrip(""), "");
}

TEST(CompressTest, ShortLiterals) {
  EXPECT_EQ(RoundTrip("a"), "a");
  EXPECT_EQ(RoundTrip("abc"), "abc");
  EXPECT_EQ(RoundTrip("abcd"), "abcd");
}

TEST(CompressTest, RepetitiveInputShrinks) {
  std::string input(10000, 'x');
  std::string compressed = Compress(input);
  EXPECT_LT(compressed.size(), input.size() / 10);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(CompressTest, StructuredReplicationPayloadShrinks) {
  // The shape of real propagation messages: repeated item-name prefixes
  // and similar values.
  std::string input;
  for (int i = 0; i < 200; ++i) {
    input += "user/profile/item" + std::to_string(i) +
             "=some-shared-value-prefix-" + std::to_string(i % 7) + ";";
  }
  std::string compressed = Compress(input);
  EXPECT_LT(compressed.size(), input.size() / 2);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(CompressTest, IncompressibleInputGrowsBounded) {
  Rng rng(4);
  std::string input;
  for (int i = 0; i < 4096; ++i) {
    input.push_back(static_cast<char>(rng.Uniform(256)));
  }
  std::string compressed = Compress(input);
  // ≤ 1 control byte per 128 literal bytes of overhead.
  EXPECT_LE(compressed.size(), input.size() + input.size() / 128 + 2);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(CompressTest, OverlappingMatches) {
  // "abcabcabc..." exercises dist < len copies.
  std::string input;
  for (int i = 0; i < 1000; ++i) input += "abc";
  EXPECT_EQ(RoundTrip(input), input);
  EXPECT_LT(Compress(input).size(), 128u);  // ~3 bytes per max-length match
}

TEST(CompressTest, BinaryDataPreserved) {
  std::string input;
  for (int i = 0; i < 2048; ++i) input.push_back(static_cast<char>(i % 256));
  EXPECT_EQ(RoundTrip(input), input);
}

class CompressRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompressRoundTripTest, RandomMixedContent) {
  Rng rng(GetParam() * 31);
  for (int trial = 0; trial < 60; ++trial) {
    std::string input;
    size_t target = rng.Uniform(20000);
    while (input.size() < target) {
      if (rng.Bernoulli(0.5) && !input.empty()) {
        // Repeat an earlier slice (creates matches).
        size_t start = rng.Uniform(input.size());
        size_t len = std::min(input.size() - start, rng.Uniform(64) + 1);
        input += input.substr(start, len);
      } else {
        for (int i = 0; i < 16; ++i) {
          input.push_back(static_cast<char>(rng.Uniform(256)));
        }
      }
    }
    ASSERT_EQ(RoundTrip(input), input) << "seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressRoundTripTest,
                         ::testing::Range(uint64_t{1}, uint64_t{5}));

TEST(DecompressTest, GarbageInputNeverCrashes) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage(rng.Uniform(200), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Uniform(256));
    (void)Decompress(garbage, 1 << 20);  // must not crash or hang
  }
}

TEST(DecompressTest, DistanceBeyondOutputRejected) {
  // Match referring before the start of the output.
  std::string bad;
  bad.push_back(static_cast<char>(0x80));  // match len = kMinMatch
  bad.push_back(0x05);                     // distance 5 into empty output
  EXPECT_TRUE(Decompress(bad).status().IsCorruption());
}

TEST(DecompressTest, ZeroDistanceRejected) {
  std::string bad;
  bad.push_back(0x00);  // literal run of 1
  bad.push_back('a');
  bad.push_back(static_cast<char>(0x80));
  bad.push_back(0x00);  // distance 0
  EXPECT_TRUE(Decompress(bad).status().IsCorruption());
}

TEST(DecompressTest, OutputCapEnforced) {
  std::string input(10000, 'y');
  std::string compressed = Compress(input);
  EXPECT_TRUE(Decompress(compressed, 100).status().IsCorruption());
  auto full = Decompress(compressed, 10000);
  EXPECT_TRUE(full.ok());
}

TEST(DecompressTest, TruncatedStreamsRejected) {
  std::string input = "hello hello hello hello hello hello";
  std::string compressed = Compress(input);
  for (size_t cut = 1; cut < compressed.size(); ++cut) {
    auto out = Decompress(compressed.substr(0, cut));
    // Either a clean error or a (shorter) prefix — never a crash. Cuts at
    // token boundaries legitimately decode to a prefix.
    if (out.ok()) {
      EXPECT_LE(out->size(), input.size());
    }
  }
}

}  // namespace
}  // namespace epidemic
