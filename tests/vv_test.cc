#include "vv/version_vector.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/random.h"

namespace epidemic {
namespace {

VersionVector Vv(std::vector<UpdateCount> counts) {
  return VersionVector(std::move(counts));
}

TEST(VersionVectorTest, ZeroInitialized) {
  VersionVector vv(3);
  EXPECT_EQ(vv.size(), 3u);
  for (NodeId k = 0; k < 3; ++k) EXPECT_EQ(vv[k], 0u);
  EXPECT_EQ(vv.Total(), 0u);
}

TEST(VersionVectorTest, IncrementBumpsOwnEntry) {
  VersionVector vv(3);
  vv.Increment(1);
  vv.Increment(1);
  vv.Increment(2);
  EXPECT_EQ(vv[0], 0u);
  EXPECT_EQ(vv[1], 2u);
  EXPECT_EQ(vv[2], 1u);
  EXPECT_EQ(vv.Total(), 3u);
}

TEST(VersionVectorTest, CompareEqual) {
  EXPECT_EQ(VersionVector::Compare(Vv({1, 2, 3}), Vv({1, 2, 3})),
            VvOrder::kEqual);
}

TEST(VersionVectorTest, CompareDominates) {
  EXPECT_EQ(VersionVector::Compare(Vv({2, 2, 3}), Vv({1, 2, 3})),
            VvOrder::kDominates);
  EXPECT_EQ(VersionVector::Compare(Vv({2, 3, 4}), Vv({1, 2, 3})),
            VvOrder::kDominates);
}

TEST(VersionVectorTest, CompareDominatedBy) {
  EXPECT_EQ(VersionVector::Compare(Vv({1, 2, 3}), Vv({1, 2, 4})),
            VvOrder::kDominatedBy);
}

TEST(VersionVectorTest, CompareConcurrent) {
  // Corollary 4 (§3): each side has a component exceeding the other.
  EXPECT_EQ(VersionVector::Compare(Vv({2, 0}), Vv({0, 1})),
            VvOrder::kConcurrent);
  EXPECT_EQ(VersionVector::Compare(Vv({1, 5, 0}), Vv({1, 4, 1})),
            VvOrder::kConcurrent);
}

TEST(VersionVectorTest, DominatesOrEqualHelpers) {
  EXPECT_TRUE(VersionVector::DominatesOrEqual(Vv({1, 1}), Vv({1, 1})));
  EXPECT_TRUE(VersionVector::DominatesOrEqual(Vv({2, 1}), Vv({1, 1})));
  EXPECT_FALSE(VersionVector::DominatesOrEqual(Vv({1, 1}), Vv({2, 1})));
  EXPECT_FALSE(VersionVector::DominatesOrEqual(Vv({2, 0}), Vv({0, 2})));

  EXPECT_FALSE(VersionVector::Dominates(Vv({1, 1}), Vv({1, 1})));
  EXPECT_TRUE(VersionVector::Dominates(Vv({2, 1}), Vv({1, 1})));

  EXPECT_TRUE(VersionVector::Conflicts(Vv({2, 0}), Vv({0, 2})));
  EXPECT_FALSE(VersionVector::Conflicts(Vv({2, 2}), Vv({0, 2})));
}

TEST(VersionVectorTest, MergeMaxTakesComponentwiseMax) {
  VersionVector a = Vv({1, 5, 0});
  a.MergeMax(Vv({3, 2, 0}));
  EXPECT_EQ(a, Vv({3, 5, 0}));
}

TEST(VersionVectorTest, MergeMaxWithSelfIsIdentity) {
  VersionVector a = Vv({4, 7});
  VersionVector b = a;
  a.MergeMax(b);
  EXPECT_EQ(a, b);
}

TEST(VersionVectorTest, AddDeltaImplementsDbvvRule3) {
  // DBVV (§4.1 rule 3): V_i += (v_j(x) - v_i(x)) componentwise.
  VersionVector dbvv = Vv({10, 20, 30});
  dbvv.AddDelta(/*newer=*/Vv({3, 5, 7}), /*base=*/Vv({1, 5, 4}));
  EXPECT_EQ(dbvv, Vv({12, 20, 33}));
}

TEST(VersionVectorTest, AddDeltaZeroDelta) {
  VersionVector dbvv = Vv({1, 1});
  dbvv.AddDelta(Vv({2, 3}), Vv({2, 3}));
  EXPECT_EQ(dbvv, Vv({1, 1}));
}

TEST(VersionVectorTest, ToStringFormat) {
  EXPECT_EQ(Vv({3, 0, 7}).ToString(), "[3,0,7]");
  EXPECT_EQ(VersionVector().ToString(), "[]");
}

TEST(VersionVectorTest, EqualityOperator) {
  EXPECT_TRUE(Vv({1, 2}) == Vv({1, 2}));
  EXPECT_FALSE(Vv({1, 2}) == Vv({2, 1}));
}

// --- Property-based sweeps -------------------------------------------------

class VvPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Compare is antisymmetric: swapping arguments maps kDominates to
// kDominatedBy and fixes kEqual/kConcurrent.
TEST_P(VvPropertyTest, CompareAntisymmetric) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    size_t n = 1 + rng.Uniform(6);
    VersionVector a(n), b(n);
    for (NodeId k = 0; k < n; ++k) {
      a[k] = rng.Uniform(4);
      b[k] = rng.Uniform(4);
    }
    VvOrder ab = VersionVector::Compare(a, b);
    VvOrder ba = VersionVector::Compare(b, a);
    switch (ab) {
      case VvOrder::kEqual:
        EXPECT_EQ(ba, VvOrder::kEqual);
        break;
      case VvOrder::kDominates:
        EXPECT_EQ(ba, VvOrder::kDominatedBy);
        break;
      case VvOrder::kDominatedBy:
        EXPECT_EQ(ba, VvOrder::kDominates);
        break;
      case VvOrder::kConcurrent:
        EXPECT_EQ(ba, VvOrder::kConcurrent);
        break;
    }
  }
}

// MergeMax result dominates-or-equals both inputs, is idempotent and
// commutative — the lattice-join property replica merging relies on.
TEST_P(VvPropertyTest, MergeMaxIsJoin) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 500; ++trial) {
    size_t n = 1 + rng.Uniform(6);
    VersionVector a(n), b(n);
    for (NodeId k = 0; k < n; ++k) {
      a[k] = rng.Uniform(10);
      b[k] = rng.Uniform(10);
    }
    VersionVector ab = a;
    ab.MergeMax(b);
    VersionVector ba = b;
    ba.MergeMax(a);
    EXPECT_EQ(ab, ba);
    EXPECT_TRUE(VersionVector::DominatesOrEqual(ab, a));
    EXPECT_TRUE(VersionVector::DominatesOrEqual(ab, b));
    VersionVector again = ab;
    again.MergeMax(b);
    EXPECT_EQ(again, ab);
  }
}

// Total is monotone under MergeMax and exactly additive under Increment.
TEST_P(VvPropertyTest, TotalMonotone) {
  Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 200; ++trial) {
    size_t n = 1 + rng.Uniform(5);
    VersionVector a(n);
    UpdateCount expected = 0;
    for (int i = 0; i < 20; ++i) {
      a.Increment(static_cast<NodeId>(rng.Uniform(n)));
      ++expected;
    }
    EXPECT_EQ(a.Total(), expected);
    VersionVector b(n);
    for (NodeId k = 0; k < n; ++k) b[k] = rng.Uniform(5);
    UpdateCount before = a.Total();
    a.MergeMax(b);
    EXPECT_GE(a.Total(), before);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VvPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace epidemic
