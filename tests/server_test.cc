#include "server/replica_server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <variant>
#include <vector>

#include "net/codec.h"
#include "net/inproc_transport.h"
#include "net/tcp_transport.h"

namespace epidemic::server {
namespace {

/// Three replica servers wired through an in-process hub.
class InProcClusterTest : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 3;

  InProcClusterTest() : hub_(kNodes), transport_(&hub_) {
    for (NodeId i = 0; i < kNodes; ++i) {
      ReplicaServer::Options options;
      for (NodeId p = 0; p < kNodes; ++p) {
        if (p != i) options.peers.push_back(p);
      }
      servers_.push_back(std::make_unique<ReplicaServer>(
          i, kNodes, &transport_, options));
      hub_.Register(i, servers_.back().get());
    }
  }

  net::InProcHub hub_;
  net::InProcTransport transport_;
  std::vector<std::unique_ptr<ReplicaServer>> servers_;
};

TEST_F(InProcClusterTest, LocalUpdateAndRead) {
  ASSERT_TRUE(servers_[0]->Update("x", "v").ok());
  auto v = servers_[0]->Read("x");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v");
  EXPECT_TRUE(servers_[1]->Read("x").status().IsNotFound());
}

TEST_F(InProcClusterTest, ManualPullPropagates) {
  ASSERT_TRUE(servers_[0]->Update("x", "v").ok());
  ASSERT_TRUE(servers_[1]->PullFrom(0).ok());
  EXPECT_EQ(*servers_[1]->Read("x"), "v");
  // Transitive: node 2 learns from node 1.
  ASSERT_TRUE(servers_[2]->PullFrom(1).ok());
  EXPECT_EQ(*servers_[2]->Read("x"), "v");
}

TEST_F(InProcClusterTest, PullFromDownPeerIsUnavailable) {
  hub_.SetNodeUp(0, false);
  EXPECT_TRUE(servers_[1]->PullFrom(0).IsUnavailable());
}

TEST_F(InProcClusterTest, OobFetchThroughTransport) {
  ASSERT_TRUE(servers_[0]->Update("hot", "fresh").ok());
  ASSERT_TRUE(servers_[1]->OobFetch(0, "hot").ok());
  EXPECT_EQ(*servers_[1]->Read("hot"), "fresh");
  // Regular state untouched on node 1 (it was an OOB copy).
  servers_[1]->WithReplica([](const ShardedReplica& r) {
    EXPECT_EQ(r.AggregateDbvv().Total(), 0u);
    EXPECT_TRUE(r.FindItem("hot")->HasAux());
  });
}

TEST_F(InProcClusterTest, ClientRpcPath) {
  ReplicaClient client(&transport_, /*server=*/0);
  ASSERT_TRUE(client.Update("x", "v").ok());
  auto v = client.Read("x");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v");
  EXPECT_TRUE(client.Read("ghost").status().IsNotFound());
}

TEST_F(InProcClusterTest, ClientDeleteRpcAndTombstoneReplication) {
  ReplicaClient client0(&transport_, 0);
  ReplicaClient client1(&transport_, 1);
  ASSERT_TRUE(client0.Update("doomed", "v").ok());
  ASSERT_TRUE(servers_[1]->PullFrom(0).ok());
  ASSERT_TRUE(client1.Read("doomed").ok());

  ASSERT_TRUE(client0.Delete("doomed").ok());
  EXPECT_TRUE(client0.Read("doomed").status().IsNotFound());
  // The tombstone replicates like any update.
  ASSERT_TRUE(servers_[1]->PullFrom(0).ok());
  EXPECT_TRUE(client1.Read("doomed").status().IsNotFound());
  // Deleting an unknown item just writes a tombstone (no error).
  EXPECT_TRUE(client0.Delete("never-existed").ok());
}

TEST_F(InProcClusterTest, ClientOobReadFetchesFromPeer) {
  ReplicaClient client0(&transport_, 0);
  ReplicaClient client1(&transport_, 1);
  ASSERT_TRUE(client0.Update("doc", "v7").ok());
  // Node 1 does not have the item; OobRead makes it fetch from node 0.
  auto v = client1.OobRead(/*from_peer=*/0, "doc");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v7");
}

TEST_F(InProcClusterTest, BackgroundAntiEntropyConverges) {
  // Rebuild server 1 and 2 with a fast anti-entropy loop.
  for (NodeId i = 0; i < kNodes; ++i) hub_.Register(i, nullptr);
  std::vector<std::unique_ptr<ReplicaServer>> servers;
  for (NodeId i = 0; i < kNodes; ++i) {
    ReplicaServer::Options options;
    for (NodeId p = 0; p < kNodes; ++p) {
      if (p != i) options.peers.push_back(p);
    }
    options.anti_entropy_interval_micros = 2000;  // 2 ms
    servers.push_back(std::make_unique<ReplicaServer>(
        i, kNodes, &transport_, options));
    hub_.Register(i, servers.back().get());
  }
  for (auto& s : servers) s->Start();

  ASSERT_TRUE(servers[0]->Update("x", "v").ok());
  // Wait (bounded) for the update to spread to all nodes.
  bool spread = false;
  for (int attempt = 0; attempt < 500 && !spread; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    spread = servers[1]->Read("x").ok() && servers[2]->Read("x").ok();
  }
  EXPECT_TRUE(spread);
  for (auto& s : servers) s->Stop();
  for (NodeId i = 0; i < kNodes; ++i) hub_.Register(i, nullptr);
  if (spread) {
    EXPECT_EQ(*servers[1]->Read("x"), "v");
    EXPECT_EQ(*servers[2]->Read("x"), "v");
  }
}

TEST_F(InProcClusterTest, ScanAndStatsRpc) {
  ReplicaClient client(&transport_, 0);
  ASSERT_TRUE(client.Update("a/1", "x").ok());
  ASSERT_TRUE(client.Update("a/2", "y").ok());
  ASSERT_TRUE(client.Update("b/1", "z").ok());

  auto listed = client.Scan("a/");
  ASSERT_TRUE(listed.ok()) << listed.status().ToString();
  ASSERT_EQ(listed->size(), 2u);
  EXPECT_EQ((*listed)[0].first, "a/1");
  EXPECT_EQ((*listed)[1].second, "y");

  auto limited = client.Scan("", 1);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->size(), 1u);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("replica 0/3"), std::string::npos);
  EXPECT_NE(stats->find("items=3"), std::string::npos);
}

TEST_F(InProcClusterTest, AdminSyncRpcPullsOnDemand) {
  ReplicaClient client0(&transport_, 0);
  ReplicaClient client1(&transport_, 1);
  ASSERT_TRUE(client0.Update("x", "v").ok());
  EXPECT_TRUE(client1.Read("x").status().IsNotFound());
  // Admin-triggered pull: node 1 syncs from node 0 immediately.
  ASSERT_TRUE(client1.TriggerSync(0).ok());
  EXPECT_EQ(*client1.Read("x"), "v");
  // Self-sync rejected; checkpoint rejected on an in-memory server.
  EXPECT_TRUE(client1.TriggerSync(1).IsInvalidArgument());
  EXPECT_TRUE(client1.TriggerCheckpoint().IsFailedPrecondition());
}

TEST_F(InProcClusterTest, MalformedRequestYieldsErrorReply) {
  auto wire = transport_.Call(0, "garbage-bytes");
  ASSERT_TRUE(wire.ok());  // transport succeeded; reply is an error message
  auto decoded = net::Decode(*wire);
  ASSERT_TRUE(decoded.ok());
  auto* reply = std::get_if<net::ClientReply>(&*decoded);
  ASSERT_NE(reply, nullptr);
  EXPECT_NE(reply->code, 0);
}

TEST(DurableServerTest, SurvivesRestartWithReplicatedState) {
  const std::string dir = ::testing::TempDir() + "/durable_server_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  net::InProcHub hub(2);
  net::InProcTransport transport(&hub);
  ReplicaServer peer(1, 2, &transport, {});
  hub.Register(1, &peer);
  ASSERT_TRUE(peer.Update("remote", "from-peer").ok());

  {
    auto durable = JournaledShardedReplica::Open(
        dir, 0, 2, ShardedReplica::kDefaultShards);
    ASSERT_TRUE(durable.ok());
    ReplicaServer server(std::move(*durable), &transport, {});
    EXPECT_TRUE(server.is_durable());
    EXPECT_EQ(server.num_shards(), ShardedReplica::kDefaultShards);
    hub.Register(0, &server);
    ASSERT_TRUE(server.Update("local", "mine").ok());
    ASSERT_TRUE(server.PullFrom(1).ok());
    EXPECT_EQ(*server.Read("remote"), "from-peer");
    hub.Register(0, nullptr);
  }  // crash without checkpoint

  {
    auto recovered = JournaledShardedReplica::Open(
        dir, 0, 2, ShardedReplica::kDefaultShards);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ReplicaServer server(std::move(*recovered), &transport, {});
    hub.Register(0, &server);
    EXPECT_EQ(*server.Read("local"), "mine");
    EXPECT_EQ(*server.Read("remote"), "from-peer");
    // Checkpoint then keep operating.
    ASSERT_TRUE(server.Checkpoint().ok());
    ASSERT_TRUE(server.Update("post", "cp").ok());
    hub.Register(0, nullptr);
  }

  {
    auto again = JournaledShardedReplica::Open(
        dir, 0, 2, ShardedReplica::kDefaultShards);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*(*again)->view().Read("post"), "cp");
    EXPECT_EQ(*(*again)->view().Read("local"), "mine");
    // The shard count is pinned: reopening with a different one is refused.
    EXPECT_TRUE(JournaledShardedReplica::Open(dir, 0, 2, 3)
                    .status()
                    .IsInvalidArgument());
  }
  std::filesystem::remove_all(dir);
}

TEST(DurableServerTest, InMemoryServerRejectsCheckpoint) {
  net::InProcHub hub(2);
  net::InProcTransport transport(&hub);
  ReplicaServer server(0, 2, &transport, {});
  EXPECT_FALSE(server.is_durable());
  EXPECT_TRUE(server.Checkpoint().IsFailedPrecondition());
}

TEST(ShardedServerTest, MismatchedShardCountsRefuseToSync) {
  net::InProcHub hub(2);
  net::InProcTransport transport(&hub);
  ReplicaServer::Options o4, o8;
  o4.num_shards = 4;
  o8.num_shards = 8;
  ReplicaServer s0(0, 2, &transport, o4);
  ReplicaServer s1(1, 2, &transport, o8);
  hub.Register(0, &s0);
  hub.Register(1, &s1);

  ASSERT_TRUE(s0.Update("x", "v").ok());
  // The handshake echoes the peer's shard count; the mismatch is rejected
  // before any state is touched.
  EXPECT_TRUE(s1.PullFrom(0).IsInvalidArgument());
  EXPECT_TRUE(s1.Read("x").status().IsNotFound());
  hub.Register(0, nullptr);
  hub.Register(1, nullptr);
}

TEST(ShardedServerTest, ShardedServerRejectsLegacyHandshake) {
  net::InProcHub hub(2);
  net::InProcTransport transport(&hub);
  ReplicaServer::Options opts;
  opts.num_shards = 4;
  ReplicaServer s0(0, 2, &transport, opts);
  hub.Register(0, &s0);

  // A wire-v1 peer sends a whole-database PropagationRequest; a sharded
  // server cannot answer it meaningfully.
  PropagationRequest legacy;
  legacy.requester = 1;
  legacy.dbvv = VersionVector(2);
  auto wire = transport.Call(0, net::Encode(net::Message(legacy)));
  ASSERT_TRUE(wire.ok());
  auto decoded = net::Decode(*wire);
  ASSERT_TRUE(decoded.ok());
  auto* reply = std::get_if<net::ClientReply>(&*decoded);
  ASSERT_NE(reply, nullptr);
  EXPECT_NE(reply->code, 0);

  // A single-shard server still serves it (wire-v1 compatibility).
  ReplicaServer::Options one;
  one.num_shards = 1;
  ReplicaServer s1(1, 2, &transport, one);
  hub.Register(1, &s1);
  ASSERT_TRUE(s1.Update("y", "w").ok());
  auto wire1 = transport.Call(1, net::Encode(net::Message(legacy)));
  ASSERT_TRUE(wire1.ok());
  auto decoded1 = net::Decode(*wire1);
  ASSERT_TRUE(decoded1.ok());
  EXPECT_NE(std::get_if<PropagationResponse>(&*decoded1), nullptr);
  hub.Register(0, nullptr);
  hub.Register(1, nullptr);
}

TEST(ShardedServerTest, StatsResetRpcIsAtomic) {
  net::InProcHub hub(1);
  net::InProcTransport transport(&hub);
  ReplicaServer server(0, 1, &transport, {});
  hub.Register(0, &server);
  ReplicaClient client(&transport, 0);

  ASSERT_TRUE(client.Update("a", "1").ok());
  ASSERT_TRUE(client.Update("b", "2").ok());
  auto snapshot = client.ResetStats();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_NE(snapshot->find("updates=2+0aux"), std::string::npos) << *snapshot;
  // Counters were zeroed in the same critical section.
  auto after = client.Stats();
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->find("updates=0+0aux"), std::string::npos) << *after;
  EXPECT_EQ(server.TotalStats().updates_regular, 0u);
  hub.Register(0, nullptr);
}

TEST(ShardedServerTest, ParallelShardWorkersConverge) {
  constexpr size_t kNodes = 2;
  net::InProcHub hub(kNodes);
  net::InProcTransport transport(&hub);
  ReplicaServer::Options opts;
  opts.num_shards = 8;
  opts.ae_workers = 3;  // per-shard serve/accept run on a pool
  ReplicaServer s0(0, kNodes, &transport, opts);
  ReplicaServer s1(1, kNodes, &transport, opts);
  hub.Register(0, &s0);
  hub.Register(1, &s1);

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        s0.Update("item-" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(s1.PullFrom(0).ok());
  for (int i = 0; i < 100; ++i) {
    auto v = s1.Read("item-" + std::to_string(i));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "v" + std::to_string(i));
  }
  s0.WithReplica([](const ShardedReplica& r) {
    EXPECT_TRUE(r.CheckInvariants().ok());
  });
  s1.WithReplica([&s0](const ShardedReplica& r1) {
    EXPECT_TRUE(r1.CheckInvariants().ok());
    s0.WithReplica([&r1](const ShardedReplica& r0) {
      EXPECT_EQ(r0.AggregateDbvv(), r1.AggregateDbvv());
    });
  });
  // A second pull is a no-op round: every shard replies "you are current".
  ASSERT_TRUE(s1.PullFrom(0).ok());
  hub.Register(0, nullptr);
  hub.Register(1, nullptr);
}

TEST(ShardedServerTest, EpochProbeSkipsQuiescentRounds) {
  using runtime::TaskKind;
  net::InProcHub hub(2);
  net::InProcTransport transport(&hub);
  ReplicaServer::Options opts;
  opts.num_shards = 8;
  ReplicaServer s0(0, 2, &transport, opts);
  ReplicaServer s1(1, 2, &transport, opts);
  hub.Register(0, &s0);
  hub.Register(1, &s1);

  ASSERT_TRUE(s0.Update("a", "1").ok());
  // First pull runs the full handshake and caches the source's epoch.
  ASSERT_TRUE(s1.PullFrom(0).ok());
  EXPECT_EQ(*s1.Read("a"), "1");

  const auto serve_kind = static_cast<size_t>(TaskKind::kServe);
  const auto snap_kind = static_cast<size_t>(TaskKind::kSnapshot);
  const uint64_t serves = s0.SchedulerHealth().tasks_by_kind[serve_kind];
  const uint64_t snaps = s1.SchedulerHealth().tasks_by_kind[snap_kind];

  // Quiescent round: the epoch probe matches, so neither side touches a
  // single shard — no snapshot tasks at the requester, no serve tasks at
  // the source.
  ASSERT_TRUE(s1.PullFrom(0).ok());
  EXPECT_EQ(s0.SchedulerHealth().tasks_by_kind[serve_kind], serves);
  EXPECT_EQ(s1.SchedulerHealth().tasks_by_kind[snap_kind], snaps);

  // A write bumps the source epoch: the probe misses, the requester
  // resends the full handshake, and the update still arrives.
  ASSERT_TRUE(s0.Update("late", "2").ok());
  ASSERT_TRUE(s1.PullFrom(0).ok());
  EXPECT_EQ(*s1.Read("late"), "2");
  EXPECT_GT(s0.SchedulerHealth().tasks_by_kind[serve_kind], serves);

  hub.Register(0, nullptr);
  hub.Register(1, nullptr);
}

// ---------------------------------------------------------------------------
// The same server stack over real TCP sockets.

TEST(TcpClusterTest, EndToEndReplicationOverSockets) {
  constexpr size_t kNodes = 2;
  net::TcpTransport transport(kNodes);

  ReplicaServer::Options opts0, opts1;
  opts0.peers = {1};
  opts1.peers = {0};
  ReplicaServer s0(0, kNodes, &transport, opts0);
  ReplicaServer s1(1, kNodes, &transport, opts1);

  net::TcpServer tcp0(&s0), tcp1(&s1);
  ASSERT_TRUE(tcp0.Start(0).ok());
  ASSERT_TRUE(tcp1.Start(0).ok());
  transport.SetPeerPort(0, tcp0.port());
  transport.SetPeerPort(1, tcp1.port());

  ReplicaClient client0(&transport, 0);
  ASSERT_TRUE(client0.Update("k", "over-tcp").ok());

  ASSERT_TRUE(s1.PullFrom(0).ok());
  ReplicaClient client1(&transport, 1);
  auto v = client1.Read("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "over-tcp");

  // Identical replicas: another pull is a no-op and leaves state equal.
  ASSERT_TRUE(s1.PullFrom(0).ok());
  s0.WithReplica([&s1](const ShardedReplica& r0) {
    s1.WithReplica([&r0](const ShardedReplica& r1) {
      EXPECT_EQ(r0.AggregateDbvv(), r1.AggregateDbvv());
    });
  });

  tcp0.Stop();
  tcp1.Stop();
}

TEST(TcpClusterTest, OobFetchOverSockets) {
  constexpr size_t kNodes = 2;
  net::TcpTransport transport(kNodes);
  ReplicaServer s0(0, kNodes, &transport, {});
  ReplicaServer s1(1, kNodes, &transport, {});
  net::TcpServer tcp0(&s0), tcp1(&s1);
  ASSERT_TRUE(tcp0.Start(0).ok());
  ASSERT_TRUE(tcp1.Start(0).ok());
  transport.SetPeerPort(0, tcp0.port());
  transport.SetPeerPort(1, tcp1.port());

  ASSERT_TRUE(s0.Update("doc", "payload").ok());
  ASSERT_TRUE(s1.OobFetch(0, "doc").ok());
  EXPECT_EQ(*s1.Read("doc"), "payload");

  tcp0.Stop();
  tcp1.Stop();
}

}  // namespace
}  // namespace epidemic::server
