// Tests for tools/epilint_ast.py — the AST-grounded concurrency lint.
// Shells out to python3; skipped (not failed) on hosts without a python3
// interpreter. The lexical rule (relaxed-atomic-rationale) is asserted
// unconditionally; the three libclang rules are asserted only when
// `epilint_ast.py --probe` reports a usable libclang (exit 0) — on
// gcc-only hosts the probe exits 3 and we instead assert the documented
// skip-with-diagnostic behavior. The CI lint-ast job pins libclang, so
// the AST assertions always run there.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "gtest/gtest.h"

namespace {

#ifndef EPI_SOURCE_DIR
#error "EPI_SOURCE_DIR must be defined by the build"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

RunResult RunEpilint(const std::string& args) {
  const std::string cmd =
      "python3 " + std::string(EPI_SOURCE_DIR) + "/tools/epilint_ast.py " +
      args + " 2>&1";
  RunResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf;
  size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

bool HavePython3() {
  return std::system("python3 -c 'pass' > /dev/null 2>&1") == 0;
}

std::string Fixture(const std::string& name) {
  return std::string(EPI_SOURCE_DIR) + "/tests/testdata/lint/" + name;
}

class EpilintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!HavePython3()) GTEST_SKIP() << "python3 not available on this host";
  }

  /// True when libclang is loadable, so the AST rules actually run.
  bool HaveLibclang() { return RunEpilint("--probe").exit_code == 0; }
};

// The probe must answer one of its two documented codes — 0 (usable) or
// 3 (unavailable) — never a crash or a violation-style exit. When usable
// it names the resolved libclang version so CI logs pin what enforced
// the AST rules.
TEST_F(EpilintTest, ProbeAnswersCleanly) {
  const RunResult result = RunEpilint("--probe");
  EXPECT_TRUE(result.exit_code == 0 || result.exit_code == 3)
      << result.output;
  if (result.exit_code == 0) {
    EXPECT_NE(result.output.find("libclang available ("), std::string::npos)
        << result.output;
  }
}

// The checked-in tree must be clean: every memory_order_relaxed carries a
// rationale, and (when libclang is present) no task captures dangle, no
// task re-enters the scheduler, no optimistic read section has side
// effects.
TEST_F(EpilintTest, RepositoryIsClean) {
  const RunResult result = RunEpilint("");
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

// The lexical rule needs no libclang: the bad fixture trips it twice, the
// good fixture (inline rationales plus one waiver) is silent.
TEST_F(EpilintTest, RelaxedRationaleFixturesAreReported) {
  const RunResult bad = RunEpilint(Fixture("bad_relaxed_atomic.cc"));
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
  EXPECT_NE(bad.output.find("relaxed-atomic-rationale"), std::string::npos)
      << bad.output;
  EXPECT_NE(bad.output.find("2 violation(s)"), std::string::npos)
      << bad.output;

  const RunResult good = RunEpilint(Fixture("good_relaxed_atomic.cc"));
  EXPECT_EQ(good.exit_code, 0) << good.output;
}

// Without libclang the tool must degrade loudly but cleanly: exit 0 on a
// clean file, with a diagnostic naming the skipped rules.
TEST_F(EpilintTest, SkipsAstRulesWithDiagnosticWhenLibclangMissing) {
  if (HaveLibclang()) {
    GTEST_SKIP() << "libclang present: the skip path is unreachable here";
  }
  const RunResult result = RunEpilint(Fixture("good_task_capture.cc"));
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("libclang unavailable"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("SKIPPED"), std::string::npos)
      << result.output;
}

// A by-reference capture on a fire-and-forget Post is reported (twice:
// blanket [&] and named [&counter]); the by-value / joining twin is clean.
TEST_F(EpilintTest, TaskCaptureFixturesAreReported) {
  if (!HaveLibclang()) GTEST_SKIP() << "libclang unavailable on this host";
  const RunResult bad = RunEpilint(Fixture("bad_task_capture.cc"));
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
  EXPECT_NE(bad.output.find("task-capture-lifetime"), std::string::npos)
      << bad.output;
  EXPECT_NE(bad.output.find("2 violation(s)"), std::string::npos)
      << bad.output;

  const RunResult good = RunEpilint(Fixture("good_task_capture.cc"));
  EXPECT_EQ(good.exit_code, 0) << good.output;
}

// A task body calling back into the scheduler is reported for both the
// nested Execute and the nested Post; sequenced top-level calls are clean.
TEST_F(EpilintTest, SchedulerReentryFixturesAreReported) {
  if (!HaveLibclang()) GTEST_SKIP() << "libclang unavailable on this host";
  const RunResult bad = RunEpilint(Fixture("bad_scheduler_reentry.cc"));
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
  EXPECT_NE(bad.output.find("scheduler-reentry"), std::string::npos)
      << bad.output;
  EXPECT_NE(bad.output.find("2 violation(s)"), std::string::npos)
      << bad.output;

  const RunResult good = RunEpilint(Fixture("good_scheduler_reentry.cc"));
  EXPECT_EQ(good.exit_code, 0) << good.output;
}

// A member write and a retained member address between ReadBegin and
// Validate are reported; the buffered-into-locals twin is clean.
TEST_F(EpilintTest, SeqlockReadFixturesAreReported) {
  if (!HaveLibclang()) GTEST_SKIP() << "libclang unavailable on this host";
  const RunResult bad = RunEpilint(Fixture("bad_seqlock_read.cc"));
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
  EXPECT_NE(bad.output.find("seqlock-read-discipline"), std::string::npos)
      << bad.output;
  EXPECT_NE(bad.output.find("2 violation(s)"), std::string::npos)
      << bad.output;

  const RunResult good = RunEpilint(Fixture("good_seqlock_read.cc"));
  EXPECT_EQ(good.exit_code, 0) << good.output;
}

// A hand-rolled decoder doing its own offset math trips the decode-bounds
// rule three times (pointer arithmetic, raw-pointer subscript, unchecked
// memcpy); the cursor-routed twin — including its waived memcpy out of an
// already-checked view — is clean.
TEST_F(EpilintTest, DecodeBoundsFixturesAreReported) {
  if (!HaveLibclang()) GTEST_SKIP() << "libclang unavailable on this host";
  const RunResult bad = RunEpilint(Fixture("bad_decode_bounds.cc"));
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
  EXPECT_NE(bad.output.find("decode-bounds-discipline"), std::string::npos)
      << bad.output;
  EXPECT_NE(bad.output.find("3 violation(s)"), std::string::npos)
      << bad.output;

  const RunResult good = RunEpilint(Fixture("good_decode_bounds.cc"));
  EXPECT_EQ(good.exit_code, 0) << good.output;
}

// The decode TUs themselves must hold the discipline: the whole point of
// funneling every untrusted read through ByteReader is that the fuzz
// harnesses then only have one bounds implementation to break.
TEST_F(EpilintTest, DecodeTusAreClean) {
  if (!HaveLibclang()) GTEST_SKIP() << "libclang unavailable on this host";
  const RunResult result = RunEpilint(
      std::string(EPI_SOURCE_DIR) + "/src/core/wire.cc " +
      std::string(EPI_SOURCE_DIR) + "/src/net/codec.cc " +
      std::string(EPI_SOURCE_DIR) + "/src/vv/vv_codec.cc " +
      std::string(EPI_SOURCE_DIR) + "/src/core/snapshot.cc " +
      std::string(EPI_SOURCE_DIR) + "/src/core/journal.cc");
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

// Pointing the lint at a nonexistent file is a usage error (exit 2),
// distinct from "violations found" (exit 1).
TEST_F(EpilintTest, MissingFileIsUsageError) {
  const RunResult result = RunEpilint("tests/testdata/lint/no_such_file.cc");
  EXPECT_EQ(result.exit_code, 2) << result.output;
}

}  // namespace
