// EPI_CHECK guards protocol invariants whose violation means a bug; these
// death tests pin that they really abort instead of limping on.

#include <gtest/gtest.h>

#include "log/log_vector.h"
#include "sim/event_queue.h"
#include "vv/version_vector.h"

namespace epidemic {
namespace {

using VvDeathTest = ::testing::Test;

TEST(VvDeathTest, MismatchedSizesAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  VersionVector a(2), b(3);
  EXPECT_DEATH((void)VersionVector::Compare(a, b), "different sizes");
  EXPECT_DEATH(a.MergeMax(b), "size mismatch");
}

TEST(VvDeathTest, AddDeltaRequiresDominance) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  VersionVector dbvv(2);
  VersionVector newer(2), base(2);
  base[0] = 5;  // base exceeds "newer": the protocol never does this
  EXPECT_DEATH(dbvv.AddDelta(newer, base), "requires newer >= base");
}

TEST(EventQueueDeathTest, SchedulingInThePastAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::EventQueue q;
  q.At(100, [] {});
  q.RunOne();  // now == 100
  EXPECT_DEATH(q.At(50, [] {}), "in the past");
}

TEST(LogDeathTest, RemoveWithWrongSlotAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OriginLog log;
  LogRecord* p1 = nullptr;
  LogRecord* p2 = nullptr;
  log.AddLogRecord(1, 1, &p1);
  log.AddLogRecord(2, 2, &p2);
  EXPECT_DEATH(log.Remove(p1, &p2), "does not match");
}

}  // namespace
}  // namespace epidemic
