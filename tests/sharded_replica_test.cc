// ShardedReplica: routing, the S=1 equivalence property (a sharded replica
// with one shard must be observably identical to a plain Replica on any
// workload), multi-shard convergence, the sharded snapshot container, the
// sharded wire messages, and durable per-shard journaling.

#include "core/sharded_replica.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/conflict.h"
#include "core/journal.h"
#include "core/replica.h"
#include "core/snapshot.h"
#include "net/codec.h"

namespace epidemic {
namespace {

// ---------------------------------------------------------------------------
// Routing.

TEST(ShardOfTest, StableInRangeAndDegenerateForOneShard) {
  for (int i = 0; i < 1000; ++i) {
    std::string name = "item-" + std::to_string(i);
    size_t shard = ShardedReplica::ShardOf(name, 16);
    EXPECT_LT(shard, 16u);
    EXPECT_EQ(shard, ShardedReplica::ShardOf(name, 16));  // deterministic
    EXPECT_EQ(ShardedReplica::ShardOf(name, 1), 0u);
  }
}

TEST(ShardOfTest, SpreadsKeysAcrossAllShards) {
  constexpr size_t kShards = 16;
  std::vector<size_t> count(kShards, 0);
  for (int i = 0; i < 2000; ++i) {
    ++count[ShardedReplica::ShardOf("key/" + std::to_string(i), kShards)];
  }
  for (size_t k = 0; k < kShards; ++k) {
    // Very loose bound — we only care that the hash is not degenerate.
    EXPECT_GT(count[k], 2000u / kShards / 4) << "shard " << k << " starved";
  }
}

// ---------------------------------------------------------------------------
// Equivalence property: drive a plain 2-node Replica pair and a sharded
// pair through the same random workload and assert every observable
// matches. With S=1 the sharded replica *is* one engine behind a router;
// with S>1 the observables must still match because shards partition the
// item space and each item's protocol history is untouched.

class EquivalenceHarness {
 public:
  explicit EquivalenceHarness(size_t num_shards)
      : strict_conflicts_(num_shards == 1),
        plain_{Replica(0, 2, &plain_listener_[0]),
               Replica(1, 2, &plain_listener_[1])},
        sharded_{ShardedReplica(0, 2, num_shards, &sharded_listener_[0]),
                 ShardedReplica(1, 2, num_shards, &sharded_listener_[1])} {}

  void Update(int node, const std::string& name, const std::string& value) {
    Status a = plain_[node].Update(name, value);
    Status b = sharded_[node].Update(name, value);
    ASSERT_EQ(a.ToString(), b.ToString());
  }

  void Delete(int node, const std::string& name) {
    Status a = plain_[node].Delete(name);
    Status b = sharded_[node].Delete(name);
    ASSERT_EQ(a.ToString(), b.ToString());
  }

  void CompareRead(int node, const std::string& name) {
    Result<std::string> a = plain_[node].Read(name);
    Result<std::string> b = sharded_[node].Read(name);
    ASSERT_EQ(a.ok(), b.ok()) << name;
    if (a.ok()) {
      EXPECT_EQ(*a, *b) << name;
    } else {
      EXPECT_EQ(a.status().ToString(), b.status().ToString()) << name;
    }
  }

  void Propagate(int source, int recipient) {
    auto a = PropagateOnce(plain_[source], plain_[recipient]);
    auto b = PropagateOnceSharded(sharded_[source], sharded_[recipient]);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(*a, *b) << "items copied diverged";
    }
  }

  void CompareEverything() {
    for (int node = 0; node < 2; ++node) {
      Replica& p = plain_[node];
      ShardedReplica& s = sharded_[node];
      ASSERT_TRUE(p.CheckInvariants().ok());
      ASSERT_TRUE(s.CheckInvariants().ok()) << s.DebugString();
      EXPECT_EQ(s.AggregateDbvv(), p.dbvv());
      EXPECT_EQ(s.Scan(""), p.Scan(""));
      EXPECT_EQ(s.Scan("item-1", 3), p.Scan("item-1", 3));
      EXPECT_EQ(s.TotalItems(), p.items().size());
      EXPECT_EQ(s.TotalStats().items_adopted, p.stats().items_adopted);
      EXPECT_EQ(s.TotalStats().updates_regular, p.stats().updates_regular);
      if (strict_conflicts_) {
        EXPECT_EQ(s.TotalStats().conflicts_detected,
                  p.stats().conflicts_detected);
        EXPECT_EQ(sharded_listener_[node].events().size(),
                  plain_listener_[node].events().size());
      } else {
        // With S>1 the per-shard DBVVs are finer-grained: a conflicting
        // item whose dropped log record gets masked (in the plain replica)
        // by later adoptions of the same origin is legitimately re-shipped
        // and re-*detected* by the sharded one. The database state stays
        // identical; only the detection count can be higher.
        EXPECT_GE(s.TotalStats().conflicts_detected,
                  p.stats().conflicts_detected);
        EXPECT_GE(sharded_listener_[node].events().size(),
                  plain_listener_[node].events().size());
      }
    }
  }

  /// Resolves, at node 0 on each twin, every conflict reported since the
  /// last call, with a value determined by the item name alone. Each twin
  /// drains its own event list (with S>1 the sharded twin may have re-
  /// detections); stale events fail as no-ops, and since the workload has
  /// stopped by resolution time, each item resolves successfully at most
  /// once per twin with identical IVV arithmetic — so the twins still end
  /// in the same state.
  void ResolveNewConflicts() {
    const auto& pe = plain_listener_[0].events();
    const auto& se = sharded_listener_[0].events();
    for (; plain_resolved_ < pe.size(); ++plain_resolved_) {
      const ConflictEvent& e = pe[plain_resolved_];
      (void)plain_[0].ResolveConflict(e.item_name, e.remote_vv,
                                      "merged:" + e.item_name);
    }
    for (; sharded_resolved_ < se.size(); ++sharded_resolved_) {
      const ConflictEvent& e = se[sharded_resolved_];
      (void)sharded_[0].ResolveConflict(e.item_name, e.remote_vv,
                                        "merged:" + e.item_name);
    }
  }

  Replica& plain(int node) { return plain_[node]; }
  ShardedReplica& sharded(int node) { return sharded_[node]; }

 private:
  const bool strict_conflicts_;
  size_t plain_resolved_ = 0;    // events already resolved at plain node 0
  size_t sharded_resolved_ = 0;  // events already resolved at sharded node 0
  RecordingConflictListener plain_listener_[2];
  RecordingConflictListener sharded_listener_[2];
  Replica plain_[2];
  ShardedReplica sharded_[2];
};

void RunRandomWorkload(EquivalenceHarness& h, uint32_t seed) {
  std::mt19937 rng(seed);
  auto pick_name = [&rng] {
    return "item-" + std::to_string(rng() % 24);
  };
  for (int op = 0; op < 300; ++op) {
    int node = static_cast<int>(rng() % 2);
    switch (rng() % 10) {
      case 0:
      case 1:
      case 2:
      case 3:  // 40% update
        h.Update(node, pick_name(), "v" + std::to_string(rng() % 1000));
        break;
      case 4:  // 10% delete
        h.Delete(node, pick_name());
        break;
      case 5:
      case 6:  // 20% read
        h.CompareRead(node, pick_name());
        break;
      case 7:
      case 8:  // 20% anti-entropy in a random direction
        h.Propagate(node, 1 - node);
        break;
      default:  // 10% full observable comparison mid-flight
        h.CompareEverything();
        break;
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Converge: exchange until quiet, resolving surviving conflicts at node
  // 0 (a resolution dominates both branches, so it sticks system-wide once
  // shipped), then do the final deep comparison.
  for (int round = 0; round < 20; ++round) {
    h.Propagate(0, 1);
    h.Propagate(1, 0);
    h.ResolveNewConflicts();
    if (::testing::Test::HasFatalFailure()) return;
  }
  h.Propagate(0, 1);
  h.Propagate(1, 0);
  h.CompareEverything();
  EXPECT_EQ(h.sharded(0).AggregateDbvv(), h.sharded(1).AggregateDbvv());
  EXPECT_EQ(h.sharded(0).Scan(""), h.sharded(1).Scan(""));
}

TEST(ShardedEquivalenceTest, SingleShardMatchesPlainReplicaOnRandomWorkloads) {
  for (uint32_t seed : {7u, 21u, 99u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    EquivalenceHarness h(/*num_shards=*/1);
    RunRandomWorkload(h, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ShardedEquivalenceTest, FourShardsMatchPlainReplicaOnRandomWorkloads) {
  for (uint32_t seed : {13u, 42u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    EquivalenceHarness h(/*num_shards=*/4);
    RunRandomWorkload(h, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Multi-shard behaviour in its own right.

TEST(ShardedReplicaTest, SixteenShardTwoNodeConvergence) {
  ShardedReplica a(0, 2, 16), b(1, 2, 16);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(a.Update("a/" + std::to_string(i), "va" + std::to_string(i))
                    .ok());
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(b.Update("b/" + std::to_string(i), "vb" + std::to_string(i))
                    .ok());
  }
  auto copied_ab = PropagateOnceSharded(a, b);
  ASSERT_TRUE(copied_ab.ok()) << copied_ab.status().ToString();
  EXPECT_EQ(*copied_ab, 200u);
  auto copied_ba = PropagateOnceSharded(b, a);
  ASSERT_TRUE(copied_ba.ok());
  EXPECT_EQ(*copied_ba, 100u);

  EXPECT_EQ(a.AggregateDbvv(), b.AggregateDbvv());
  EXPECT_EQ(a.TotalItems(), 300u);
  EXPECT_EQ(a.Scan(""), b.Scan(""));
  // Per-shard §4.1 invariants, shard by shard, then the aggregate check.
  for (size_t k = 0; k < a.num_shards(); ++k) {
    EXPECT_TRUE(a.shard(k).CheckInvariants().ok()) << "shard " << k;
    EXPECT_TRUE(b.shard(k).CheckInvariants().ok()) << "shard " << k;
    EXPECT_EQ(a.shard(k).dbvv(), b.shard(k).dbvv()) << "shard " << k;
  }
  EXPECT_TRUE(a.CheckInvariants().ok());
  EXPECT_TRUE(b.CheckInvariants().ok());

  // A second exchange finds every shard current: the reply carries zero
  // segments (the O(S) handshake short-circuit).
  ShardedPropagationResponse resp =
      a.HandlePropagationRequest(b.BuildPropagationRequest());
  EXPECT_TRUE(resp.you_are_current());
}

TEST(ShardedReplicaTest, UnchangedShardsAreOmittedFromTheReply) {
  ShardedReplica a(0, 2, 8), b(1, 2, 8);
  ASSERT_TRUE(PropagateOnceSharded(a, b).ok());
  // One fresh update dirties exactly one shard.
  ASSERT_TRUE(a.Update("solo", "v").ok());
  ShardedPropagationResponse resp =
      a.HandlePropagationRequest(b.BuildPropagationRequest());
  ASSERT_EQ(resp.segments.size(), 1u);
  EXPECT_EQ(resp.segments[0].shard,
            static_cast<uint32_t>(a.ShardOf("solo")));
}

// ---------------------------------------------------------------------------
// Sharded wire messages through the codec.

TEST(ShardedWireTest, RequestAndResponseSurviveTheCodec) {
  ShardedReplica a(0, 3, 4), b(1, 3, 4);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(b.Update("k" + std::to_string(i), "v" + std::to_string(i))
                    .ok());
  }
  std::string req_wire =
      net::Encode(net::Message(a.BuildPropagationRequest()));
  auto req = net::Decode(req_wire);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  ShardedPropagationResponse resp = b.HandlePropagationRequest(
      std::get<ShardedPropagationRequest>(*req));
  auto resp2 = net::Decode(net::Encode(net::Message(resp)));
  ASSERT_TRUE(resp2.ok()) << resp2.status().ToString();
  ASSERT_TRUE(
      a.AcceptPropagation(std::get<ShardedPropagationResponse>(*resp2)).ok());
  EXPECT_EQ(a.AggregateDbvv(), b.AggregateDbvv());
  EXPECT_EQ(a.Scan(""), b.Scan(""));
  EXPECT_TRUE(a.CheckInvariants().ok());
}

TEST(ShardedWireTest, MismatchedShardCountIsRejectedBeforeAnyStateChanges) {
  ShardedReplica four(0, 2, 4), eight(1, 2, 8);
  ASSERT_TRUE(eight.Update("x", "v").ok());
  // `four` asks `eight`: the source notices the shard-count mismatch and
  // replies with its own count and no segments; the requester refuses it.
  ShardedPropagationResponse resp =
      eight.HandlePropagationRequest(four.BuildPropagationRequest());
  EXPECT_EQ(resp.num_shards, 8u);
  EXPECT_TRUE(resp.segments.empty());
  Status s = four.AcceptPropagation(resp);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_EQ(four.TotalItems(), 0u);
  EXPECT_TRUE(four.CheckInvariants().ok());
}

// ---------------------------------------------------------------------------
// Wire v3: the delta-segment exchange must be observably identical to v2.

/// Seeds the same two-node workload into a sharded pair.
void SeedWorkload(ShardedReplica& a, ShardedReplica& b) {
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        a.Update("a/" + std::to_string(i), "va" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        b.Update("b/" + std::to_string(i), "vb" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(a.Delete("a/0").ok());
}

TEST(ShardedWireV3Test, V3ExchangeMatchesV2Outcome) {
  // Two identical clusters, one synced over v2 and one over v3 (pooled,
  // uncompressed): every post-exchange observable must match.
  ShardedReplica a2(0, 2, 8), b2(1, 2, 8);
  ShardedReplica a3(0, 2, 8), b3(1, 2, 8);
  SeedWorkload(a2, b2);
  SeedWorkload(a3, b3);

  BufferPool pool;
  auto v2_ab = PropagateOnceSharded(a2, b2);
  auto v3_ab = PropagateOnceShardedV3(a3, b3, /*compress=*/false, &pool);
  ASSERT_TRUE(v2_ab.ok());
  ASSERT_TRUE(v3_ab.ok()) << v3_ab.status().ToString();
  EXPECT_EQ(*v2_ab, *v3_ab);
  auto v2_ba = PropagateOnceSharded(b2, a2);
  auto v3_ba = PropagateOnceShardedV3(b3, a3, /*compress=*/false, &pool);
  ASSERT_TRUE(v2_ba.ok());
  ASSERT_TRUE(v3_ba.ok());
  EXPECT_EQ(*v2_ba, *v3_ba);

  EXPECT_EQ(a3.CanonicalState(), a2.CanonicalState());
  EXPECT_EQ(b3.CanonicalState(), b2.CanonicalState());
  EXPECT_TRUE(a3.CheckInvariants().ok());
  EXPECT_TRUE(b3.CheckInvariants().ok());
}

TEST(ShardedWireV3Test, CompressedExchangeConverges) {
  ShardedReplica a(0, 2, 4), b(1, 2, 4);
  const std::string value(512, 'z');  // compressible segment bodies
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(a.Update("k" + std::to_string(i), value).ok());
  }
  auto copied = PropagateOnceShardedV3(a, b, /*compress=*/true);
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  EXPECT_EQ(*copied, 40u);
  EXPECT_EQ(a.Scan(""), b.Scan(""));
  EXPECT_TRUE(b.CheckInvariants().ok());
}

TEST(ShardedWireV3Test, V3RequestAndResponseSurviveTheCodec) {
  // Same shape as the v2 codec test, but over tags 17/18.
  ShardedReplica a(0, 3, 4), b(1, 3, 4);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        b.Update("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  std::string req_wire = net::Encode(
      net::Message(a.BuildPropagationRequestV3(/*accept_compressed=*/true)));
  auto req = net::Decode(req_wire);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  const auto& decoded_req = std::get<ShardedPropagationRequest>(*req);
  EXPECT_EQ(decoded_req.wire_version, kWireV3);
  EXPECT_EQ(decoded_req.flags, kPropFlagAcceptCompressed);

  ShardedPropagationResponse resp = b.HandlePropagationRequestV3(decoded_req);
  auto resp2 = net::Decode(net::Encode(net::Message(resp)));
  ASSERT_TRUE(resp2.ok()) << resp2.status().ToString();
  const auto& decoded_resp = std::get<ShardedPropagationResponse>(*resp2);
  EXPECT_EQ(decoded_resp.wire_version, kWireV3);
  ASSERT_TRUE(a.AcceptPropagation(decoded_resp).ok());
  EXPECT_EQ(a.AggregateDbvv(), b.AggregateDbvv());
  EXPECT_EQ(a.Scan(""), b.Scan(""));
  EXPECT_TRUE(a.CheckInvariants().ok());
}

TEST(ShardedWireV3Test, V3SegmentsAreSmallerThanV2) {
  ShardedReplica a(0, 8, 4), b(1, 8, 4);
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(a.Update("key/" + std::to_string(i), "v").ok());
  }
  auto body_bytes = [](const ShardedPropagationResponse& resp) {
    size_t total = 0;
    for (const auto& seg : resp.segments) total += seg.body.size();
    return total;
  };
  size_t v2 =
      body_bytes(a.HandlePropagationRequest(b.BuildPropagationRequest()));
  size_t v3 =
      body_bytes(a.HandlePropagationRequestV3(b.BuildPropagationRequestV3()));
  // The headline claim is ≥30% fewer control bytes (benchmarked in
  // EXPERIMENTS.md W1); here we only pin the direction so the test stays
  // robust to codec tweaks.
  EXPECT_LT(v3, v2) << "v3 segments should be smaller than v2";
}

TEST(ShardedWireV3Test, BufferPoolIsRecycledAcrossRounds) {
  ShardedReplica a(0, 2, 4), b(1, 2, 4);
  BufferPool pool;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(
          a.Update("r" + std::to_string(round) + "/" + std::to_string(i), "v")
              .ok());
    }
    ASSERT_TRUE(PropagateOnceShardedV3(a, b, /*compress=*/false, &pool).ok());
  }
  // Rounds after the first reuse the returned segment buffers.
  EXPECT_GT(pool.stats().hits, 0u);
  EXPECT_GT(pool.stats().returns, 0u);
  EXPECT_EQ(a.Scan(""), b.Scan(""));
}

// ---------------------------------------------------------------------------
// Sharded snapshots.

TEST(ShardedSnapshotTest, RoundTripRestoresEveryShard) {
  RecordingConflictListener listener;
  ShardedReplica original(2, 3, 8);
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(original
                    .Update("snap/" + std::to_string(i),
                            "v" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(original.Delete("snap/7").ok());
  original.ResetStats();  // counters are not part of a snapshot

  std::string blob = EncodeShardedSnapshot(original);
  auto restored = DecodeShardedSnapshot(blob, &listener);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->num_shards(), 8u);
  EXPECT_EQ((*restored)->id(), original.id());
  EXPECT_EQ((*restored)->AggregateDbvv(), original.AggregateDbvv());
  EXPECT_EQ((*restored)->Scan(""), original.Scan(""));
  EXPECT_EQ((*restored)->TotalItems(), original.TotalItems());
  EXPECT_TRUE((*restored)->CheckInvariants().ok());
  EXPECT_EQ((*restored)->DebugString(), original.DebugString());
}

TEST(ShardedSnapshotTest, CorruptionAndTruncationAreDetected) {
  ShardedReplica original(0, 2, 4);
  ASSERT_TRUE(original.Update("x", "value").ok());
  std::string blob = EncodeShardedSnapshot(original);

  std::string flipped = blob;
  flipped[flipped.size() / 2] ^= 0x20;
  EXPECT_FALSE(DecodeShardedSnapshot(flipped).ok());

  EXPECT_FALSE(DecodeShardedSnapshot(blob.substr(0, blob.size() - 3)).ok());
  EXPECT_FALSE(DecodeShardedSnapshot("EPISNAP1not-sharded").ok());
}

TEST(ShardedSnapshotTest, SaveAndLoadThroughAFile) {
  std::string dir = ::testing::TempDir() + "/sharded_snapshot_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = dir + "/db.snap";

  ShardedReplica original(1, 2, 4);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(original.Update("f" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(SaveShardedSnapshot(original, path).ok());
  auto loaded = LoadShardedSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->Scan(""), original.Scan(""));
  EXPECT_TRUE((*loaded)->CheckInvariants().ok());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Durable sharded replica: per-shard journals under one directory.

class JournaledShardedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/journaled_sharded_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(JournaledShardedTest, UpdatesAcrossShardsSurviveRestart) {
  {
    auto db = JournaledShardedReplica::Open(dir_, 0, 2, 4);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          (*db)->Update("d" + std::to_string(i), "v" + std::to_string(i))
              .ok());
    }
    ASSERT_TRUE((*db)->Delete("d3").ok());
  }  // crash: no checkpoint

  auto recovered = JournaledShardedReplica::Open(dir_, 0, 2, 4);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*(*recovered)->view().Read("d5"), "v5");
  EXPECT_FALSE((*recovered)->view().Read("d3").ok());  // tombstoned
  EXPECT_EQ((*recovered)->view().TotalItems(), 40u);   // tombstone counts
  EXPECT_TRUE((*recovered)->view().CheckInvariants().ok());
}

TEST_F(JournaledShardedTest, CheckpointTruncatesAndRecoveryStillWorks) {
  {
    auto db = JournaledShardedReplica::Open(dir_, 0, 2, 4);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*db)->Update("c" + std::to_string(i), "v1").ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
    EXPECT_EQ((*db)->records_since_checkpoint(), 0u);
    ASSERT_TRUE((*db)->Update("c0", "v2").ok());  // post-checkpoint tail
  }
  auto recovered = JournaledShardedReplica::Open(dir_, 0, 2, 4);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*(*recovered)->view().Read("c0"), "v2");
  EXPECT_EQ(*(*recovered)->view().Read("c19"), "v1");
  EXPECT_TRUE((*recovered)->view().CheckInvariants().ok());
}

TEST_F(JournaledShardedTest, ReopeningWithADifferentShardCountIsRefused) {
  {
    auto db = JournaledShardedReplica::Open(dir_, 0, 2, 4);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Update("x", "v").ok());
  }
  auto wrong = JournaledShardedReplica::Open(dir_, 0, 2, 8);
  EXPECT_TRUE(wrong.status().IsInvalidArgument())
      << wrong.status().ToString();
  // The pinned count still opens fine.
  auto right = JournaledShardedReplica::Open(dir_, 0, 2, 4);
  ASSERT_TRUE(right.ok()) << right.status().ToString();
  EXPECT_EQ(*(*right)->view().Read("x"), "v");
}

TEST_F(JournaledShardedTest, JournaledResolveConflictSurvivesRestart) {
  // Manufacture a genuine conflict: a concurrent remote copy arrives for an
  // item this node also wrote, then the conflict is resolved and the
  // journal replayed.
  {
    RecordingConflictListener listener;
    auto db = JournaledShardedReplica::Open(dir_, 0, 2, 2, &listener);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Update("doc", "local").ok());

    Replica remote(1, 2);
    ASSERT_TRUE(remote.Update("doc", "remote").ok());
    size_t shard = (*db)->view().ShardOf("doc");
    PropagationResponse resp = remote.HandlePropagationRequest(
        (*db)->view().shard(shard).BuildPropagationRequest());
    ASSERT_TRUE((*db)->AcceptShardPropagation(shard, resp).ok());
    ASSERT_EQ(listener.events().size(), 1u);

    Status resolved = (*db)->ResolveConflict(
        "doc", listener.events()[0].remote_vv, "merged");
    ASSERT_TRUE(resolved.ok()) << resolved.ToString();
    EXPECT_EQ(*(*db)->view().Read("doc"), "merged");
  }
  auto recovered = JournaledShardedReplica::Open(dir_, 0, 2, 2);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*(*recovered)->view().Read("doc"), "merged");
  EXPECT_TRUE((*recovered)->view().CheckInvariants().ok());
}

}  // namespace
}  // namespace epidemic
