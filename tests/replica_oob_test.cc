#include <gtest/gtest.h>

#include <string>

#include "core/replica.h"

namespace epidemic {
namespace {

VersionVector Vv(std::vector<UpdateCount> counts) {
  return VersionVector(std::move(counts));
}

// Fetches `item` out-of-bound from `source` into `dest`.
Status OobFetch(Replica& source, Replica& dest, std::string_view item) {
  OobRequest req = dest.BuildOobRequest(item);
  OobResponse resp = source.HandleOobRequest(req);
  return dest.AcceptOobResponse(resp);
}

// ---------------------------------------------------------------------------
// Out-of-bound copying (§5.2).

TEST(OobTest, FetchUnknownItemReturnsNotFound) {
  Replica a(0, 2), b(1, 2);
  EXPECT_TRUE(OobFetch(b, a, "ghost").IsNotFound());
}

TEST(OobTest, NewerCopyAdoptedAsAuxiliary) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "fresh").ok());

  ASSERT_TRUE(OobFetch(b, a, "x").ok());
  const Item* item = a.FindItem("x");
  ASSERT_NE(item, nullptr);
  ASSERT_TRUE(item->HasAux());
  EXPECT_EQ(item->aux->value, "fresh");
  EXPECT_EQ(item->aux->ivv, Vv({0, 1}));

  // User reads see the auxiliary copy.
  EXPECT_EQ(*a.Read("x"), "fresh");
  // Regular structures untouched: empty regular copy, zero DBVV, no logs.
  EXPECT_EQ(item->value, "");
  EXPECT_EQ(item->ivv, Vv({0, 0}));
  EXPECT_EQ(a.dbvv(), Vv({0, 0}));
  EXPECT_EQ(a.log_vector().TotalRecords(), 0u);
  EXPECT_EQ(a.stats().aux_copies_created, 1u);
  EXPECT_TRUE(a.CheckInvariants().ok());
}

TEST(OobTest, OlderOrEqualCopyIgnored) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "v").ok());
  ASSERT_TRUE(PropagateOnce(b, a).ok());
  // a is already current; the OOB copy is equal -> no aux created.
  ASSERT_TRUE(OobFetch(b, a, "x").ok());
  EXPECT_FALSE(a.FindItem("x")->HasAux());
  EXPECT_EQ(a.stats().oob_copies_ignored, 1u);
  EXPECT_EQ(a.stats().aux_copies_created, 0u);
}

TEST(OobTest, ConflictingOobCopyReported) {
  RecordingConflictListener conflicts;
  Replica a(0, 2, &conflicts);
  Replica b(1, 2);
  ASSERT_TRUE(a.Update("x", "A").ok());
  ASSERT_TRUE(b.Update("x", "B").ok());
  Status s = OobFetch(b, a, "x");
  EXPECT_TRUE(s.IsConflict());
  EXPECT_EQ(conflicts.count(), 1u);
  EXPECT_EQ(conflicts.events()[0].source, ConflictSource::kOutOfBound);
  EXPECT_EQ(*a.Read("x"), "A");  // nothing adopted
}

TEST(OobTest, SourcePrefersItsAuxCopy) {
  Replica a(0, 3), b(1, 3), c(2, 3);
  ASSERT_TRUE(c.Update("x", "v1").ok());
  // b obtains x out-of-bound from c -> b holds it as auxiliary only.
  ASSERT_TRUE(OobFetch(c, b, "x").ok());
  ASSERT_TRUE(b.FindItem("x")->HasAux());
  // a fetches from b: must receive b's auxiliary copy, not the empty
  // regular one.
  ASSERT_TRUE(OobFetch(b, a, "x").ok());
  EXPECT_EQ(*a.Read("x"), "v1");
}

TEST(OobTest, OobDoesNotReduceLaterPropagationWork) {
  // Footnote 2 (§5.1): even though a already has x out-of-bound, regular
  // propagation ships x again, because propagation uses regular state only.
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "v").ok());
  ASSERT_TRUE(OobFetch(b, a, "x").ok());
  EXPECT_EQ(*a.Read("x"), "v");

  b.ResetStats();
  ASSERT_TRUE(PropagateOnce(b, a).ok());
  EXPECT_EQ(b.stats().items_shipped, 1u);  // shipped despite the OOB copy
  // After adoption the regular copy catches up and the aux copy is dropped.
  EXPECT_FALSE(a.FindItem("x")->HasAux());
  EXPECT_EQ(a.stats().aux_copies_discarded, 1u);
  EXPECT_TRUE(a.CheckInvariants().ok());
}

// ---------------------------------------------------------------------------
// Updates on auxiliary copies + intra-node propagation (§5.3, Fig. 4).

TEST(AuxUpdateTest, UpdateOnAuxCopyUsesAuxStructuresOnly) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "v1").ok());
  ASSERT_TRUE(OobFetch(b, a, "x").ok());

  ASSERT_TRUE(a.Update("x", "v2").ok());
  const Item* item = a.FindItem("x");
  EXPECT_EQ(item->aux->value, "v2");
  EXPECT_EQ(item->aux->ivv, Vv({1, 1}));  // own entry bumped on the aux IVV
  EXPECT_EQ(a.stats().updates_aux, 1u);
  EXPECT_EQ(a.stats().updates_regular, 0u);
  // Regular structures untouched; one aux-log record with the pre-update
  // IVV and redo info.
  EXPECT_EQ(a.dbvv(), Vv({0, 0}));
  ASSERT_EQ(a.aux_log().size(), 1u);
  const AuxRecord* rec = a.aux_log().Earliest(item->id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->vv, Vv({0, 1}));  // excludes the update itself
  EXPECT_EQ(rec->op.new_value, "v2");
}

TEST(AuxUpdateTest, IntraNodeReplayAppliesAuxUpdatesInOrder) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "v1").ok());
  ASSERT_TRUE(OobFetch(b, a, "x").ok());
  ASSERT_TRUE(a.Update("x", "v2").ok());
  ASSERT_TRUE(a.Update("x", "v3").ok());
  EXPECT_EQ(a.aux_log().size(), 2u);

  // Regular propagation brings a's regular copy to b's state (v1); the
  // intra-node step then replays v2, v3 as regular local updates.
  ASSERT_TRUE(PropagateOnce(b, a).ok());
  const Item* item = a.FindItem("x");
  EXPECT_FALSE(item->HasAux());              // caught up and discarded
  EXPECT_EQ(item->value, "v3");
  EXPECT_EQ(item->ivv, Vv({2, 1}));          // two replayed local updates
  EXPECT_EQ(a.dbvv(), Vv({2, 1}));
  EXPECT_EQ(a.aux_log().size(), 0u);
  EXPECT_EQ(a.stats().intra_node_ops_applied, 2u);
  // Replays appended a log record for the latest local update.
  EXPECT_EQ(a.log_vector().ForOrigin(0).size(), 1u);
  EXPECT_EQ(a.log_vector().ForOrigin(0).head()->seq, 2u);
  EXPECT_TRUE(a.CheckInvariants().ok());
}

TEST(AuxUpdateTest, ReplayedUpdatesPropagateToOtherNodes) {
  Replica a(0, 3), b(1, 3), c(2, 3);
  ASSERT_TRUE(b.Update("x", "v1").ok());
  ASSERT_TRUE(OobFetch(b, a, "x").ok());
  ASSERT_TRUE(a.Update("x", "v2").ok());
  ASSERT_TRUE(PropagateOnce(b, a).ok());  // triggers intra-node replay at a
  ASSERT_EQ(*a.Read("x"), "v2");

  // c can now learn both b's original and a's replayed update from a.
  ASSERT_TRUE(PropagateOnce(a, c).ok());
  EXPECT_EQ(*c.Read("x"), "v2");
  EXPECT_EQ(c.FindItem("x")->ivv, Vv({1, 1, 0}));
  EXPECT_TRUE(c.CheckInvariants().ok());
}

TEST(AuxUpdateTest, PartialCatchUpKeepsAuxCopy) {
  // The aux chain starts two OOB hops ahead: regular copy reaches only the
  // first hop, so replay must wait (e->vv dominates regular ivv).
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "v1").ok());
  ASSERT_TRUE(OobFetch(b, a, "x").ok());      // aux at {0,1}
  ASSERT_TRUE(b.Update("x", "v2").ok());
  ASSERT_TRUE(OobFetch(b, a, "x").ok());      // aux advances to {0,2}
  ASSERT_TRUE(a.Update("x", "v3").ok());      // aux record with vv {0,2}

  // Simulate a stale propagation response carrying only b's first version:
  // build it by hand from a snapshot taken before v2.
  Replica b_old(1, 2);
  ASSERT_TRUE(b_old.Update("x", "v1").ok());
  ASSERT_TRUE(PropagateOnce(b_old, a).ok());

  const Item* item = a.FindItem("x");
  ASSERT_TRUE(item->HasAux());                // not caught up yet
  EXPECT_EQ(item->value, "v1");               // regular at {0,1}
  EXPECT_EQ(*a.Read("x"), "v3");              // user still sees aux
  EXPECT_EQ(a.aux_log().size(), 1u);          // record still pending

  // Now the real b (at v2) propagates; replay completes.
  ASSERT_TRUE(PropagateOnce(b, a).ok());
  EXPECT_FALSE(a.FindItem("x")->HasAux());
  EXPECT_EQ(*a.Read("x"), "v3");
  EXPECT_EQ(a.FindItem("x")->ivv, Vv({1, 2}));
  EXPECT_TRUE(a.CheckInvariants().ok());
}

TEST(AuxUpdateTest, IntraNodeConflictDetected) {
  // a updates x locally (regular), then receives an OOB copy of a sibling
  // divergent lineage? Construct instead: a has aux updates applied on top
  // of b's v1, but a's regular copy receives a *conflicting* copy from c.
  RecordingConflictListener conflicts;
  Replica a(0, 3, &conflicts);
  Replica b(1, 3), c(2, 3);
  ASSERT_TRUE(b.Update("x", "fromB").ok());
  ASSERT_TRUE(c.Update("x", "fromC").ok());  // concurrent with b's
  ASSERT_TRUE(OobFetch(b, a, "x").ok());     // aux lineage: b's
  ASSERT_TRUE(a.Update("x", "local").ok());  // aux record on top of {0,1,0}

  // Regular propagation from c: a's regular copy (zero IVV) adopts c's
  // copy {0,0,1}. The earliest aux record has vv {0,1,0} -> conflict.
  ASSERT_TRUE(PropagateOnce(c, a).ok());
  ASSERT_EQ(conflicts.count(), 1u);
  EXPECT_EQ(conflicts.events()[0].source, ConflictSource::kIntraNode);
  // The aux copy stays; the user continues to see their own write.
  EXPECT_TRUE(a.FindItem("x")->HasAux());
  EXPECT_EQ(*a.Read("x"), "local");
}

TEST(AuxUpdateTest, OobRefreshPreservesPendingAuxRecords) {
  // §5.2: adopting a newer OOB copy over an existing aux copy must not
  // touch the aux log.
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "v1").ok());
  ASSERT_TRUE(OobFetch(b, a, "x").ok());
  ASSERT_TRUE(a.Update("x", "mine").ok());
  ASSERT_EQ(a.aux_log().size(), 1u);

  ASSERT_TRUE(b.Update("x", "v2").ok());
  // The new OOB copy {0,2} vs local aux {1,1}: concurrent! Conflict.
  EXPECT_TRUE(OobFetch(b, a, "x").IsConflict());
  EXPECT_EQ(a.aux_log().size(), 1u);

  // Without the local aux update it is a clean refresh:
  Replica a2(0, 2);
  ASSERT_TRUE(OobFetch(b, a2, "x").ok());
  EXPECT_EQ(*a2.Read("x"), "v2");
  EXPECT_EQ(a2.FindItem("x")->aux->ivv, Vv({0, 2}));
  EXPECT_EQ(a2.stats().aux_copies_created, 1u);
  ASSERT_TRUE(b.Update("x", "v3").ok());
  ASSERT_TRUE(OobFetch(b, a2, "x").ok());  // refresh existing aux
  EXPECT_EQ(*a2.Read("x"), "v3");
  EXPECT_EQ(a2.stats().aux_copies_created, 1u);  // reused, not recreated
}

TEST(AuxUpdateTest, UpdatesKeepFlowingWhileOutOfBound) {
  // A longer aux lifetime: OOB fetch, several local updates interleaved
  // with propagation rounds; once regular catches up, everything replays.
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "b1").ok());
  ASSERT_TRUE(OobFetch(b, a, "x").ok());
  ASSERT_TRUE(a.Update("x", "a1").ok());
  ASSERT_TRUE(PropagateOnce(b, a).ok());  // catch up + replay a1
  ASSERT_TRUE(a.Update("x", "a2").ok());  // aux gone: regular update now
  EXPECT_EQ(a.stats().updates_regular, 1u);
  EXPECT_EQ(*a.Read("x"), "a2");
  ASSERT_TRUE(PropagateOnce(a, b).ok());
  EXPECT_EQ(*b.Read("x"), "a2");
  EXPECT_EQ(a.dbvv(), b.dbvv());
  EXPECT_TRUE(a.CheckInvariants().ok());
  EXPECT_TRUE(b.CheckInvariants().ok());
}

}  // namespace
}  // namespace epidemic
