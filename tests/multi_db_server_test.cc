#include "multidb/multi_db_server.h"

#include <gtest/gtest.h>

#include <memory>
#include <variant>
#include <vector>

#include "net/codec.h"
#include "net/inproc_transport.h"
#include "net/tcp_transport.h"

namespace epidemic::multidb {
namespace {

TEST(EnvelopeTest, RoutedRoundTrip) {
  std::string frame = WrapRouted("docs", "inner-bytes");
  auto unwrapped = UnwrapRouted(frame);
  ASSERT_TRUE(unwrapped.ok());
  EXPECT_EQ(unwrapped->first, "docs");
  EXPECT_EQ(unwrapped->second, "inner-bytes");
}

TEST(EnvelopeTest, MalformedRoutedRejected) {
  EXPECT_TRUE(UnwrapRouted("").status().IsCorruption());
  EXPECT_TRUE(UnwrapRouted(SummaryRequestFrame()).status().IsCorruption());
  // Empty database name is invalid.
  std::string bad = WrapRouted("", "x");
  EXPECT_TRUE(UnwrapRouted(bad).status().IsCorruption());
}

TEST(EnvelopeTest, SummaryRoundTrip) {
  std::vector<MultiDbNode::DbSummary> summary;
  summary.push_back({"a", VersionVector({1, 2})});
  summary.push_back({"b", VersionVector({0, 7})});
  auto decoded = DecodeSummary(EncodeSummary(summary));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].db, "a");
  EXPECT_EQ((*decoded)[1].dbvv, VersionVector({0, 7}));
}

TEST(EnvelopeTest, TruncatedSummaryRejected) {
  std::vector<MultiDbNode::DbSummary> summary;
  summary.push_back({"alpha", VersionVector({1, 2, 3})});
  std::string frame = EncodeSummary(summary);
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_FALSE(DecodeSummary(frame.substr(0, cut)).ok()) << cut;
  }
}

class MultiDbServerTest : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 2;

  MultiDbServerTest() : hub_(kNodes), transport_(&hub_) {
    for (NodeId i = 0; i < kNodes; ++i) {
      servers_.push_back(
          std::make_unique<MultiDbServer>(i, kNodes, &transport_));
      hub_.Register(i, servers_.back().get());
    }
  }

  net::InProcHub hub_;
  net::InProcTransport transport_;
  std::vector<std::unique_ptr<MultiDbServer>> servers_;
};

TEST_F(MultiDbServerTest, PullOneDatabaseOverTransport) {
  ASSERT_TRUE(servers_[1]->Update("docs", "readme", "hello").ok());
  ASSERT_TRUE(servers_[0]->PullFrom(1, "docs").ok());
  EXPECT_EQ(*servers_[0]->Read("docs", "readme"), "hello");
}

TEST_F(MultiDbServerTest, PullAllSweepsLaggingDatabasesOnly) {
  ASSERT_TRUE(servers_[1]->Update("docs", "a", "1").ok());
  ASSERT_TRUE(servers_[1]->Update("config", "b", "2").ok());
  auto first = servers_[0]->PullAllFrom(1);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(*first, 2u);
  EXPECT_EQ(*servers_[0]->Read("docs", "a"), "1");
  EXPECT_EQ(*servers_[0]->Read("config", "b"), "2");

  // Nothing changed: the sweep pulls zero databases.
  auto second = servers_[0]->PullAllFrom(1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 0u);

  // One database changes: exactly one pull.
  ASSERT_TRUE(servers_[1]->Update("docs", "a", "1b").ok());
  auto third = servers_[0]->PullAllFrom(1);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, 1u);
  EXPECT_EQ(*servers_[0]->Read("docs", "a"), "1b");
}

TEST_F(MultiDbServerTest, RoutedClientOpsThroughRawTransport) {
  // Drive the server purely through encoded frames, like a remote client.
  std::string put = WrapRouted(
      "inbox",
      net::Encode(net::Message(net::ClientUpdateRequest{"m1", "hi"})));
  auto put_reply = transport_.Call(1, put);
  ASSERT_TRUE(put_reply.ok());

  std::string get = WrapRouted(
      "inbox", net::Encode(net::Message(net::ClientReadRequest{"m1"})));
  auto get_reply = transport_.Call(1, get);
  ASSERT_TRUE(get_reply.ok());
  auto decoded = net::Decode(*get_reply);
  ASSERT_TRUE(decoded.ok());
  auto* reply = std::get_if<net::ClientReply>(&*decoded);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->code, 0);
  EXPECT_EQ(reply->payload, "hi");

  // Reading from a different database misses.
  std::string wrong_db = WrapRouted(
      "outbox", net::Encode(net::Message(net::ClientReadRequest{"m1"})));
  auto miss = transport_.Call(1, wrong_db);
  ASSERT_TRUE(miss.ok());
  auto miss_decoded = net::Decode(*miss);
  ASSERT_TRUE(miss_decoded.ok());
  EXPECT_NE(std::get_if<net::ClientReply>(&*miss_decoded)->code, 0);
}

TEST_F(MultiDbServerTest, GarbageFrameYieldsErrorReply) {
  auto reply = transport_.Call(0, "\x01garbage");
  ASSERT_TRUE(reply.ok());  // transported fine; reply is an error message
  auto decoded = net::Decode(*reply);
  ASSERT_TRUE(decoded.ok());
  auto* err = std::get_if<net::ClientReply>(&*decoded);
  ASSERT_NE(err, nullptr);
  EXPECT_NE(err->code, 0);
}

TEST(MultiDbTcpTest, SweepOverRealSockets) {
  constexpr size_t kNodes = 2;
  net::TcpTransport transport(kNodes);
  MultiDbServer s0(0, kNodes, &transport);
  MultiDbServer s1(1, kNodes, &transport);
  net::TcpServer tcp0(&s0), tcp1(&s1);
  ASSERT_TRUE(tcp0.Start(0).ok());
  ASSERT_TRUE(tcp1.Start(0).ok());
  transport.SetPeerPort(0, tcp0.port());
  transport.SetPeerPort(1, tcp1.port());

  ASSERT_TRUE(s1.Update("docs", "readme", "over tcp").ok());
  ASSERT_TRUE(s1.Update("metrics", "qps", "120").ok());
  auto pulled = s0.PullAllFrom(1);
  ASSERT_TRUE(pulled.ok()) << pulled.status().ToString();
  EXPECT_EQ(*pulled, 2u);
  EXPECT_EQ(*s0.Read("docs", "readme"), "over tcp");
  EXPECT_EQ(*s0.Read("metrics", "qps"), "120");

  tcp0.Stop();
  tcp1.Stop();
}

}  // namespace
}  // namespace epidemic::multidb
