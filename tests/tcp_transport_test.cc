#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp_transport.h"

namespace epidemic::net {
namespace {

/// Echo handler for the pooled-transport tests.
class EchoHandler : public RequestHandler {
 public:
  std::string HandleRequest(std::string_view request) override {
    ++calls_;
    return std::string(request);
  }
  int calls() const { return calls_.load(); }

 private:
  std::atomic<int> calls_{0};  // handlers run on connection threads
};

/// A connected AF_UNIX stream pair for exercising the frame codec without
/// a real server. Small frames fit in the socket buffer, so one thread can
/// write then read back.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    for (int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  }
};

// ---------------------------------------------------------------------------
// Frame codec: byte-level format and fault paths.

TEST(TcpFrameTest, HeaderBytesAreLittleEndian) {
  SocketPair sp;
  ASSERT_TRUE(WriteFrame(sp.fds[0], "abc").ok());
  // 5 header bytes + 3 payload bytes. The length must be little-endian on
  // every host — the frame format is a wire contract, not a host ABI.
  char raw[8];
  ASSERT_EQ(::recv(sp.fds[1], raw, sizeof(raw), MSG_WAITALL),
            static_cast<ssize_t>(sizeof(raw)));
  EXPECT_EQ(raw[0], 3);  // length LSB first
  EXPECT_EQ(raw[1], 0);
  EXPECT_EQ(raw[2], 0);
  EXPECT_EQ(raw[3], 0);
  EXPECT_EQ(raw[4], 0);  // flags: uncompressed
  EXPECT_EQ(std::string(raw + 5, 3), "abc");
}

TEST(TcpFrameTest, VectoredWriteMatchesContiguousRead) {
  SocketPair sp;
  std::string a = "head";
  std::string b;  // empty pieces are legal
  std::string c(600, 'z');
  struct iovec iov[3] = {{a.data(), a.size()},
                         {b.data(), b.size()},
                         {c.data(), c.size()}};
  ASSERT_TRUE(WriteFrameV(sp.fds[0], iov, 3).ok());
  Result<std::string> got = ReadFrame(sp.fds[1]);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, a + b + c);
}

TEST(TcpFrameTest, ReadBufferCapacityIsReused) {
  SocketPair sp;
  std::string payload;
  ASSERT_TRUE(WriteFrame(sp.fds[0], std::string(200, 'x')).ok());
  ASSERT_TRUE(ReadFrameInto(sp.fds[1], &payload).ok());
  const size_t capacity = payload.capacity();
  ASSERT_TRUE(WriteFrame(sp.fds[0], std::string(100, 'y')).ok());
  ASSERT_TRUE(ReadFrameInto(sp.fds[1], &payload).ok());
  EXPECT_EQ(payload, std::string(100, 'y'));
  EXPECT_EQ(payload.capacity(), capacity);  // resize reused, no realloc
}

TEST(TcpFrameTest, OversizedFrameRejected) {
  SocketPair sp;
  // Hand-craft a header announcing kMaxFrameBytes + 1 payload bytes.
  const uint32_t len = kMaxFrameBytes + 1;
  char header[5];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  header[4] = 0;
  ASSERT_EQ(::send(sp.fds[0], header, 5, 0), 5);
  std::string payload;
  Status s = ReadFrameInto(sp.fds[1], &payload);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(TcpFrameTest, UnknownFrameFlagsRejected) {
  SocketPair sp;
  const char header[5] = {1, 0, 0, 0, char(0x80)};  // undefined flag bit
  ASSERT_EQ(::send(sp.fds[0], header, 5, 0), 5);
  std::string payload;
  EXPECT_TRUE(ReadFrameInto(sp.fds[1], &payload).IsCorruption());
}

TEST(TcpFrameTest, PeerClosingMidFrameIsIOError) {
  SocketPair sp;
  // Promise 100 payload bytes, deliver 10, then close.
  const char header[5] = {100, 0, 0, 0, 0};
  ASSERT_EQ(::send(sp.fds[0], header, 5, 0), 5);
  ASSERT_EQ(::send(sp.fds[0], "0123456789", 10, 0), 10);
  ::close(sp.fds[0]);
  sp.fds[0] = -1;
  std::string payload;
  Status s = ReadFrameInto(sp.fds[1], &payload);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

// ---------------------------------------------------------------------------
// Connection pool.

TEST(TcpPoolTest, CallsReuseOneConnection) {
  EchoHandler h;
  TcpServer server(&h);
  ASSERT_TRUE(server.Start(0).ok());
  TcpTransport transport(1);
  transport.SetPeerPort(0, server.port());

  for (int i = 0; i < 10; ++i) {
    auto r = transport.Call(0, "m" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, "m" + std::to_string(i));
  }
  const TransportStats s = transport.Stats(false);
  EXPECT_EQ(s.calls, 10u);
  EXPECT_EQ(s.connections_opened, 1u);  // zero per-call churn
  EXPECT_EQ(s.connections_reused, 9u);
  EXPECT_EQ(s.reconnects, 0u);
  server.Stop();
}

TEST(TcpPoolTest, ConnectPerCallWhenPoolingDisabled) {
  EchoHandler h;
  TcpServer server(&h);
  ASSERT_TRUE(server.Start(0).ok());
  TcpTransport::Options options;
  options.pool_connections = false;
  TcpTransport transport(1, options);
  transport.SetPeerPort(0, server.port());

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(transport.Call(0, "x").ok());
  }
  const TransportStats s = transport.Stats(false);
  EXPECT_EQ(s.calls, 5u);
  EXPECT_EQ(s.connections_opened, 5u);  // the churn the pool removes
  EXPECT_EQ(s.connections_reused, 0u);
  server.Stop();
}

TEST(TcpPoolTest, ReconnectsAfterServerRestart) {
  EchoHandler h;
  const uint16_t port = [] {
    // Grab an ephemeral port we can re-bind after the restart.
    EchoHandler probe_handler;
    TcpServer probe(&probe_handler);
    EXPECT_TRUE(probe.Start(0).ok());
    uint16_t p = probe.port();
    probe.Stop();
    return p;
  }();
  auto server = std::make_unique<TcpServer>(&h);
  ASSERT_TRUE(server->Start(port).ok());

  TcpTransport transport(1);
  transport.SetPeerPort(0, port);
  ASSERT_TRUE(transport.Call(0, "before").ok());

  // Restart: the pooled fd is now dead on the client side; the next call
  // must notice mid-call, reconnect, and retry transparently.
  server->Stop();
  server = std::make_unique<TcpServer>(&h);
  ASSERT_TRUE(server->Start(port).ok());

  auto r = transport.Call(0, "after");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "after");
  const TransportStats s = transport.Stats(false);
  EXPECT_EQ(s.reconnects, 1u);
  EXPECT_EQ(s.connections_opened, 2u);
  server->Stop();
}

TEST(TcpPoolTest, BackoffFailsFastAfterRefusedConnect) {
  TcpTransport::Options options;
  options.backoff_initial_micros = 60 * 1000 * 1000;  // park for the test
  TcpTransport transport(1, options);
  transport.SetPeerPort(0, 1);  // almost certainly nothing listens on :1
  EXPECT_TRUE(transport.Call(0, "x").status().IsUnavailable());
  EXPECT_TRUE(transport.Call(0, "x").status().IsUnavailable());
  const TransportStats s = transport.Stats(false);
  EXPECT_EQ(s.calls, 2u);
  EXPECT_EQ(s.connections_opened, 0u);
  EXPECT_EQ(s.backoff_skips, 1u);  // second call never re-dialed
}

TEST(TcpPoolTest, ConcurrentCallersSharePool) {
  EchoHandler h;
  TcpServer server0(&h), server1(&h);
  ASSERT_TRUE(server0.Start(0).ok());
  ASSERT_TRUE(server1.Start(0).ok());
  TcpTransport transport(2);
  transport.SetPeerPort(0, server0.port());
  transport.SetPeerPort(1, server1.port());

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&transport, t] {
      for (int i = 0; i < 25; ++i) {
        auto r = transport.Call(static_cast<NodeId>(t % 2), "x");
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(*r, "x");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.calls(), 100);
  const TransportStats s = transport.Stats(false);
  EXPECT_EQ(s.calls, 100u);
  EXPECT_EQ(s.connections_opened, 2u);  // one pooled fd per peer
  EXPECT_EQ(s.connections_reused, 98u);
  server0.Stop();
  server1.Stop();
}

TEST(TcpPoolTest, StatsResetDrainsCounters) {
  EchoHandler h;
  TcpServer server(&h);
  ASSERT_TRUE(server.Start(0).ok());
  TcpTransport transport(1);
  transport.SetPeerPort(0, server.port());
  ASSERT_TRUE(transport.Call(0, "x").ok());

  const TransportStats first = transport.Stats(true);
  EXPECT_EQ(first.calls, 1u);
  EXPECT_GT(first.bytes_sent, 0u);
  EXPECT_GT(first.bytes_received, 0u);
  const TransportStats second = transport.Stats(false);
  EXPECT_EQ(second.calls, 0u);
  EXPECT_EQ(second.bytes_sent, 0u);
  server.Stop();
}

}  // namespace
}  // namespace epidemic::net
