#include "common/hash.h"

#include <gtest/gtest.h>

#include <string>

namespace epidemic {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC-32C test vectors.
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xe3069283u);
  // 32 bytes of zero (from the iSCSI spec / LevelDB tests).
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8a9136aau);
  std::string ffs(32, '\xff');
  EXPECT_EQ(Crc32c(ffs), 0x62a8ab43u);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(Crc32c(std::string_view("hello")),
            Crc32c(std::string_view("hellp")));
  EXPECT_NE(Crc32c(std::string_view("ab")), Crc32c(std::string_view("ba")));
}

TEST(Crc32cTest, SeedChainsCalls) {
  std::string data = "some longer piece of data to checksum";
  uint32_t whole = Crc32c(data);
  uint32_t part1 = Crc32c(data.substr(0, 10));
  uint32_t chained = Crc32c(data.data() + 10, data.size() - 10, part1);
  EXPECT_EQ(whole, chained);
}

TEST(Crc32cTest, SingleBitFlipDetected) {
  std::string data(100, 'x');
  uint32_t original = Crc32c(data);
  for (size_t byte = 0; byte < data.size(); byte += 7) {
    std::string mutated = data;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0x01);
    EXPECT_NE(Crc32c(mutated), original) << "byte " << byte;
  }
}

}  // namespace
}  // namespace epidemic
