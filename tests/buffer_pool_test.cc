// BufferPool (common/buffer_pool.h): recycling, capacity retention, the
// bound policies, PooledBuffer RAII, and thread safety under concurrent
// checkout — the pool backs the v3 segment encoders on the server hot
// path, so its invariants are what keep that path allocation-free.

#include "common/buffer_pool.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace epidemic {
namespace {

TEST(BufferPoolTest, RecyclesCapacity) {
  BufferPool pool;
  std::string buf = pool.Get(/*reserve_hint=*/1024);
  EXPECT_TRUE(buf.empty());
  EXPECT_GE(buf.capacity(), 1024u);
  buf.assign(512, 'x');
  const char* data = buf.data();
  pool.Put(std::move(buf));

  // The same storage comes back, cleared but with capacity intact.
  std::string again = pool.Get();
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), 1024u);
  EXPECT_EQ(again.data(), data);

  BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.returns, 1u);
}

TEST(BufferPoolTest, GrowsToReserveHint) {
  BufferPool pool;
  pool.Put(std::string());  // tiny pooled buffer
  std::string buf = pool.Get(/*reserve_hint=*/4096);
  EXPECT_GE(buf.capacity(), 4096u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, DropsOversizedAndOverflowingBuffers) {
  BufferPool pool(/*max_buffers=*/2, /*max_buffer_bytes=*/64);
  pool.Put(std::string());
  pool.Put(std::string());
  pool.Put(std::string());  // free list already full
  EXPECT_EQ(pool.free_buffers(), 2u);

  std::string big;
  big.reserve(1024);  // beyond max_buffer_bytes
  pool.Get();         // make room in the list
  pool.Put(std::move(big));
  EXPECT_EQ(pool.free_buffers(), 1u);
  EXPECT_EQ(pool.stats().discards, 2u);
}

TEST(BufferPoolTest, PooledBufferReturnsOnDestruction) {
  BufferPool pool;
  {
    PooledBuffer buf(&pool, /*reserve_hint=*/256);
    buf->append("segment bytes");
    EXPECT_EQ(*buf, "segment bytes");
  }
  EXPECT_EQ(pool.free_buffers(), 1u);
  EXPECT_EQ(pool.stats().returns, 1u);
}

TEST(BufferPoolTest, PooledBufferWorksWithoutPool) {
  PooledBuffer buf(nullptr, /*reserve_hint=*/128);
  EXPECT_GE(buf->capacity(), 128u);
  buf->append("plain");
  EXPECT_EQ(*buf, "plain");
}

// Concurrent Get/Put from many threads (the striped shard workers all
// share the server's pool): counters stay consistent, nothing crashes
// under TSan.
TEST(BufferPoolTest, ConcurrentCheckoutIsSafe) {
  BufferPool pool(/*max_buffers=*/8);
  constexpr int kThreads = 4;
  constexpr int kRounds = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < kRounds; ++i) {
        std::string buf = pool.Get(/*reserve_hint=*/64);
        buf.assign(32, 'y');
        pool.Put(std::move(buf));
      }
    });
  }
  for (auto& t : threads) t.join();
  BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kRounds);
  EXPECT_EQ(stats.returns + stats.discards, kThreads * kRounds);
  EXPECT_LE(pool.free_buffers(), 8u);
}

}  // namespace
}  // namespace epidemic
