// Tests for the Wuu & Bernstein gossip baseline (§8.3 ref [15]) and the
// Merkle-tree LWW comparator.

#include <gtest/gtest.h>

#include "baselines/merkle_node.h"
#include "baselines/wuu_bernstein_node.h"
#include "common/random.h"

namespace epidemic {
namespace {

// ---------------------------------------------------------------------------
// Wuu & Bernstein.

TEST(WuuBernsteinTest, BasicGossipPropagation) {
  WuuBernsteinNode a(0, 3), b(1, 3), c(2, 3);
  ASSERT_TRUE(a.ClientUpdate("x", "v1").ok());
  ASSERT_TRUE(b.SyncWith(a).ok());
  EXPECT_EQ(*b.ClientRead("x"), "v1");
  // Transitive: c learns from b.
  ASSERT_TRUE(c.SyncWith(b).ok());
  EXPECT_EQ(*c.ClientRead("x"), "v1");
}

TEST(WuuBernsteinTest, InOrderApplicationPerOrigin) {
  WuuBernsteinNode a(0, 2), b(1, 2);
  ASSERT_TRUE(a.ClientUpdate("x", "v1").ok());
  ASSERT_TRUE(a.ClientUpdate("x", "v2").ok());
  ASSERT_TRUE(a.ClientUpdate("y", "w").ok());
  ASSERT_TRUE(b.SyncWith(a).ok());
  EXPECT_EQ(*b.ClientRead("x"), "v2");
  EXPECT_EQ(*b.ClientRead("y"), "w");
}

TEST(WuuBernsteinTest, LogShipsEveryUpdateNotJustLatest) {
  // The contrast with the paper's log vector: 50 updates to one item all
  // travel (the records are per-update).
  WuuBernsteinNode a(0, 2), b(1, 2);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(a.ClientUpdate("hot", "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(b.SyncWith(a).ok());
  EXPECT_EQ(*b.ClientRead("hot"), "v49");
  EXPECT_EQ(b.sync_stats().items_copied, 50u);  // one per update
}

TEST(WuuBernsteinTest, GarbageCollectionAfterFullKnowledge) {
  WuuBernsteinNode a(0, 2), b(1, 2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(a.ClientUpdate("k" + std::to_string(i), "v").ok());
  }
  EXPECT_EQ(a.log_size(), 10u);
  // b pulls: b now knows everything; within the synchronous exchange a
  // also learns that b knows, so both GC down to empty.
  ASSERT_TRUE(b.SyncWith(a).ok());
  EXPECT_EQ(a.log_size(), 0u);
  EXPECT_EQ(b.log_size(), 0u);
}

TEST(WuuBernsteinTest, GcWaitsForAllNodesInLargerCluster) {
  WuuBernsteinNode a(0, 3), b(1, 3), c(2, 3);
  ASSERT_TRUE(a.ClientUpdate("x", "v").ok());
  ASSERT_TRUE(b.SyncWith(a).ok());
  // c hasn't seen it: the record must survive at a and b.
  EXPECT_GE(a.log_size(), 1u);
  EXPECT_GE(b.log_size(), 1u);
  ASSERT_TRUE(c.SyncWith(b).ok());
  // c knows now, but a doesn't know that c knows until it gossips again.
  ASSERT_TRUE(a.SyncWith(c).ok());
  EXPECT_EQ(a.log_size(), 0u);
}

TEST(WuuBernsteinTest, ConvergesUnderRandomGossip) {
  constexpr size_t kNodes = 4;
  WuuBernsteinNode n0(0, kNodes), n1(1, kNodes), n2(2, kNodes),
      n3(3, kNodes);
  WuuBernsteinNode* nodes[] = {&n0, &n1, &n2, &n3};
  Rng rng(17);
  for (int step = 0; step < 60; ++step) {
    auto* actor = nodes[rng.Uniform(kNodes)];
    if (rng.NextDouble() < 0.4) {
      // Single-writer keys per node avoid LWW-free ordering ambiguity.
      ASSERT_TRUE(actor
                      ->ClientUpdate("n" + std::to_string(actor->id()),
                                     "v" + std::to_string(step))
                      .ok());
    } else {
      auto* peer = nodes[rng.Uniform(kNodes)];
      if (peer != actor) {
        ASSERT_TRUE(actor->SyncWith(*peer).ok());
      }
    }
  }
  for (int round = 0; round < 8; ++round) {
    for (size_t i = 0; i < kNodes; ++i) {
      ASSERT_TRUE(nodes[i]->SyncWith(*nodes[(i + 1) % kNodes]).ok());
    }
  }
  for (size_t i = 1; i < kNodes; ++i) {
    EXPECT_EQ(nodes[i]->Snapshot(), nodes[0]->Snapshot());
  }
}

// ---------------------------------------------------------------------------
// Merkle LWW.

TEST(MerkleTest, BasicSyncAndRead) {
  MerkleNode a(0, 2), b(1, 2);
  ASSERT_TRUE(b.ClientUpdate("x", "v").ok());
  ASSERT_TRUE(a.SyncWith(b).ok());
  EXPECT_EQ(*a.ClientRead("x"), "v");
  EXPECT_TRUE(a.ClientRead("ghost").status().IsNotFound());
}

TEST(MerkleTest, IdenticalReplicasCompareRootsOnly) {
  MerkleNode a(0, 2), b(1, 2);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(b.ClientUpdate("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(a.SyncWith(b).ok());
  EXPECT_EQ(a.RootDigest(), b.RootDigest());

  a.ResetSyncStats();
  ASSERT_TRUE(a.SyncWith(b).ok());
  EXPECT_EQ(a.sync_stats().noop_exchanges, 1u);
  EXPECT_EQ(a.sync_stats().version_comparisons, 1u);  // just the root
  EXPECT_EQ(a.sync_stats().items_examined, 0u);
}

TEST(MerkleTest, DescentTouchesLogarithmicDigests) {
  MerkleNode a(0, 2, /*depth=*/8), b(1, 2, /*depth=*/8);
  for (int i = 0; i < 512; ++i) {
    ASSERT_TRUE(b.ClientUpdate("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(a.SyncWith(b).ok());
  ASSERT_TRUE(b.ClientUpdate("k7", "fresh").ok());  // one dirty item
  a.ResetSyncStats();
  ASSERT_TRUE(a.SyncWith(b).ok());
  EXPECT_EQ(*a.ClientRead("k7"), "fresh");
  // One dirty leaf: the descent visits ≤ 2·depth+1 nodes.
  EXPECT_LE(a.sync_stats().version_comparisons, 2u * 8 + 1);
  // Overfetch: the whole bucket travels, not just the dirty item.
  EXPECT_GE(a.sync_stats().items_examined, 1u);
}

TEST(MerkleTest, LwwSilentlyResolvesConcurrentWrites) {
  // The correctness contrast (paper §2.1): Merkle-LWW picks a winner with
  // no conflict report; version vectors would flag this pair.
  MerkleNode a(0, 2), b(1, 2);
  ASSERT_TRUE(a.ClientUpdate("x", "fromA").ok());
  ASSERT_TRUE(b.ClientUpdate("x", "fromB").ok());  // concurrent
  ASSERT_TRUE(a.SyncWith(b).ok());
  ASSERT_TRUE(b.SyncWith(a).ok());
  // Deterministic winner (equal ts=1, writer 1 > writer 0), no detection.
  EXPECT_EQ(*a.ClientRead("x"), "fromB");
  EXPECT_EQ(*b.ClientRead("x"), "fromB");
  EXPECT_EQ(a.conflicts_detected(), 0u);
}

TEST(MerkleTest, ConvergesUnderRandomSingleWriterWorkload) {
  constexpr size_t kNodes = 3;
  MerkleNode n0(0, kNodes), n1(1, kNodes), n2(2, kNodes);
  MerkleNode* nodes[] = {&n0, &n1, &n2};
  Rng rng(23);
  for (int step = 0; step < 100; ++step) {
    auto* actor = nodes[rng.Uniform(kNodes)];
    if (rng.NextDouble() < 0.5) {
      ASSERT_TRUE(actor
                      ->ClientUpdate("n" + std::to_string(actor->id()) +
                                         "-k" + std::to_string(rng.Uniform(4)),
                                     "v" + std::to_string(step))
                      .ok());
    } else {
      auto* peer = nodes[rng.Uniform(kNodes)];
      if (peer != actor) {
        ASSERT_TRUE(actor->SyncWith(*peer).ok());
      }
    }
  }
  for (int round = 0; round < 4; ++round) {
    for (size_t i = 0; i < kNodes; ++i) {
      ASSERT_TRUE(nodes[i]->SyncWith(*nodes[(i + 1) % kNodes]).ok());
    }
  }
  EXPECT_EQ(n1.Snapshot(), n0.Snapshot());
  EXPECT_EQ(n2.Snapshot(), n0.Snapshot());
  EXPECT_EQ(n1.RootDigest(), n0.RootDigest());
}

TEST(MerkleTest, DeleteViaOverwriteSemantics) {
  // Merkle-LWW has no tombstones in this implementation; documents the
  // simpler model (overwrite with empty value still lists the item).
  MerkleNode a(0, 2);
  ASSERT_TRUE(a.ClientUpdate("x", "v").ok());
  ASSERT_TRUE(a.ClientUpdate("x", "").ok());
  auto v = a.ClientRead("x");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "");
}

}  // namespace
}  // namespace epidemic
