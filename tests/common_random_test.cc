#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace epidemic {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(99);
  for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000007ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.UniformRange(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
    saw_lo |= (v == 10);
    saw_hi |= (v == 12);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) should be near 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    double v = rng.Exponential(4.0);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / trials, 4.0, 0.15);
}

TEST(ZipfTest, SingleItemAlwaysZero) {
  Rng rng(1);
  ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfTest, SamplesWithinRange) {
  Rng rng(2);
  ZipfSampler zipf(100, 0.99);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 100u);
  }
}

TEST(ZipfTest, ZeroSkewIsRoughlyUniform) {
  Rng rng(3);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.1, 0.02);
  }
}

TEST(ZipfTest, SkewConcentratesOnHead) {
  Rng rng(4);
  ZipfSampler zipf(1000, 1.2);
  int head_hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (zipf.Sample(rng) < 10) ++head_hits;
  }
  // With s=1.2 over 1000 items, the top 10 carry well over half the mass.
  EXPECT_GT(static_cast<double>(head_hits) / trials, 0.5);
}

TEST(ZipfTest, HigherRankLessPopular) {
  Rng rng(5);
  ZipfSampler zipf(50, 1.0);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[40]);
}

}  // namespace
}  // namespace epidemic
