#include "log/aux_log.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace epidemic {
namespace {

VersionVector Vv(std::vector<UpdateCount> counts) {
  return VersionVector(std::move(counts));
}

TEST(AuxLogTest, StartsEmpty) {
  AuxLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.head(), nullptr);
  EXPECT_EQ(log.Earliest(0), nullptr);
}

TEST(AuxLogTest, AppendAssignsIncreasingM) {
  AuxLog log;
  AuxRecord* a = log.Append(0, Vv({0, 0}), UpdateOp{"v1"});
  AuxRecord* b = log.Append(0, Vv({1, 0}), UpdateOp{"v2"});
  EXPECT_LT(a->m, b->m);
  EXPECT_EQ(log.size(), 2u);
}

TEST(AuxLogTest, RecordCarriesVvAndOp) {
  AuxLog log;
  AuxRecord* r = log.Append(3, Vv({2, 5}), UpdateOp{"payload"});
  EXPECT_EQ(r->item, 3u);
  EXPECT_EQ(r->vv, Vv({2, 5}));
  EXPECT_EQ(r->op.new_value, "payload");
}

TEST(AuxLogTest, EarliestReturnsOldestPerItem) {
  AuxLog log;
  AuxRecord* a0 = log.Append(0, Vv({0}), UpdateOp{"a0"});
  log.Append(1, Vv({0}), UpdateOp{"b0"});
  log.Append(0, Vv({1}), UpdateOp{"a1"});
  EXPECT_EQ(log.Earliest(0), a0);
  EXPECT_EQ(log.Earliest(0)->op.new_value, "a0");
  EXPECT_EQ(log.Earliest(1)->op.new_value, "b0");
  EXPECT_EQ(log.Earliest(9), nullptr);
}

TEST(AuxLogTest, RemoveEarliestAdvancesChain) {
  AuxLog log;
  AuxRecord* a0 = log.Append(0, Vv({0}), UpdateOp{"a0"});
  AuxRecord* a1 = log.Append(0, Vv({1}), UpdateOp{"a1"});
  log.Remove(a0);
  EXPECT_EQ(log.Earliest(0), a1);
  EXPECT_EQ(log.size(), 1u);
  log.Remove(a1);
  EXPECT_EQ(log.Earliest(0), nullptr);
  EXPECT_TRUE(log.empty());
}

TEST(AuxLogTest, RemoveMiddleOfGlobalList) {
  AuxLog log;
  log.Append(0, Vv({0}), UpdateOp{"a"});
  AuxRecord* mid = log.Append(1, Vv({0}), UpdateOp{"b"});
  log.Append(2, Vv({0}), UpdateOp{"c"});
  log.Remove(mid);
  EXPECT_EQ(log.size(), 2u);
  // Global order preserved for the remaining records.
  EXPECT_EQ(log.head()->op.new_value, "a");
  EXPECT_EQ(log.head()->next->op.new_value, "c");
  EXPECT_EQ(log.Earliest(1), nullptr);
}

TEST(AuxLogTest, RemoveMiddleOfItemChain) {
  AuxLog log;
  AuxRecord* a0 = log.Append(0, Vv({0}), UpdateOp{"a0"});
  AuxRecord* a1 = log.Append(0, Vv({1}), UpdateOp{"a1"});
  AuxRecord* a2 = log.Append(0, Vv({2}), UpdateOp{"a2"});
  log.Remove(a1);
  EXPECT_EQ(log.Earliest(0), a0);
  EXPECT_EQ(a0->item_next, a2);
  EXPECT_EQ(a2->item_prev, a0);
  EXPECT_EQ(log.CountForItem(0), 2u);
}

TEST(AuxLogTest, InterleavedItemChainsAreIndependent) {
  AuxLog log;
  log.Append(0, Vv({0}), UpdateOp{"a0"});
  log.Append(1, Vv({0}), UpdateOp{"b0"});
  log.Append(0, Vv({1}), UpdateOp{"a1"});
  log.Append(1, Vv({1}), UpdateOp{"b1"});
  EXPECT_EQ(log.CountForItem(0), 2u);
  EXPECT_EQ(log.CountForItem(1), 2u);
  // Draining item 0 leaves item 1 untouched.
  while (AuxRecord* r = log.Earliest(0)) log.Remove(r);
  EXPECT_EQ(log.CountForItem(0), 0u);
  EXPECT_EQ(log.CountForItem(1), 2u);
  EXPECT_EQ(log.Earliest(1)->op.new_value, "b0");
}

TEST(AuxLogTest, RemoveAllForItem) {
  AuxLog log;
  log.Append(0, Vv({0}), UpdateOp{"a0"});
  log.Append(1, Vv({0}), UpdateOp{"b0"});
  log.Append(0, Vv({1}), UpdateOp{"a1"});
  log.RemoveAllForItem(0);
  EXPECT_EQ(log.CountForItem(0), 0u);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.Earliest(1)->op.new_value, "b0");
}

TEST(AuxLogTest, RemoveAllForAbsentItemIsNoop) {
  AuxLog log;
  log.Append(0, Vv({0}), UpdateOp{"a"});
  log.RemoveAllForItem(42);
  EXPECT_EQ(log.size(), 1u);
}

TEST(AuxLogTest, StressRandomRemovalKeepsChainsConsistent) {
  AuxLog log;
  Rng rng(31);
  std::vector<AuxRecord*> live;
  for (int i = 0; i < 2000; ++i) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      ItemId item = static_cast<ItemId>(rng.Uniform(8));
      live.push_back(log.Append(item, Vv({0}), UpdateOp{"v"}));
    } else {
      size_t idx = rng.Uniform(live.size());
      log.Remove(live[idx]);
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
    }
  }
  EXPECT_EQ(log.size(), live.size());
  // Per-item chains are in increasing-m order and match CountForItem.
  size_t total = 0;
  for (ItemId item = 0; item < 8; ++item) {
    uint64_t prev_m = 0;
    for (AuxRecord* r = log.Earliest(item); r != nullptr; r = r->item_next) {
      EXPECT_GT(r->m, prev_m);
      prev_m = r->m;
      ++total;
    }
  }
  EXPECT_EQ(total, live.size());
}

}  // namespace
}  // namespace epidemic
