#include "common/clock.h"

#include <gtest/gtest.h>

namespace epidemic {
namespace {

TEST(ManualClockTest, StartsAtGivenTime) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
}

TEST(ManualClockTest, AdvanceAccumulates) {
  ManualClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.Advance(50);
  clock.Advance(25);
  EXPECT_EQ(clock.NowMicros(), 75);
}

TEST(ManualClockTest, SetOverrides) {
  ManualClock clock(10);
  clock.Set(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
}

TEST(RealClockTest, MonotonicNonDecreasing) {
  RealClock* clock = RealClock::Default();
  TimeMicros a = clock->NowMicros();
  TimeMicros b = clock->NowMicros();
  EXPECT_LE(a, b);
}

TEST(RealClockTest, DefaultIsSingleton) {
  EXPECT_EQ(RealClock::Default(), RealClock::Default());
}

TEST(ClockTest, PolymorphicUse) {
  ManualClock manual(5);
  Clock* clock = &manual;
  EXPECT_EQ(clock->NowMicros(), 5);
}

}  // namespace
}  // namespace epidemic
