// Tombstone deletes: Delete() is an ordinary update whose state is
// "deleted", so it replicates, conflicts, and replays exactly like a value
// write.

#include <gtest/gtest.h>

#include "core/replica.h"

namespace epidemic {
namespace {

Status OobFetch(Replica& source, Replica& dest, std::string_view item) {
  OobRequest req = dest.BuildOobRequest(item);
  OobResponse resp = source.HandleOobRequest(req);
  return dest.AcceptOobResponse(resp);
}

TEST(DeleteTest, DeleteMakesReadNotFound) {
  Replica r(0, 2);
  ASSERT_TRUE(r.Update("x", "v").ok());
  ASSERT_TRUE(r.Delete("x").ok());
  EXPECT_TRUE(r.Read("x").status().IsNotFound());
  // The control state persists as a tombstone.
  const Item* item = r.FindItem("x");
  ASSERT_NE(item, nullptr);
  EXPECT_TRUE(item->deleted);
  EXPECT_EQ(item->ivv.Total(), 2u);  // delete counted as an update
  EXPECT_TRUE(r.CheckInvariants().ok());
}

TEST(DeleteTest, DeleteOfUnknownItemCreatesTombstone) {
  Replica r(0, 2);
  ASSERT_TRUE(r.Delete("ghost").ok());
  EXPECT_TRUE(r.Read("ghost").status().IsNotFound());
  EXPECT_EQ(r.dbvv().Total(), 1u);
}

TEST(DeleteTest, UpdateRevivesDeletedItem) {
  Replica r(0, 2);
  ASSERT_TRUE(r.Update("x", "v1").ok());
  ASSERT_TRUE(r.Delete("x").ok());
  ASSERT_TRUE(r.Update("x", "v2").ok());
  auto v = r.Read("x");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v2");
}

TEST(DeleteTest, TombstonePropagates) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "v").ok());
  ASSERT_TRUE(PropagateOnce(b, a).ok());
  EXPECT_TRUE(a.Read("x").ok());

  ASSERT_TRUE(b.Delete("x").ok());
  ASSERT_TRUE(PropagateOnce(b, a).ok());
  EXPECT_TRUE(a.Read("x").status().IsNotFound());
  EXPECT_EQ(a.dbvv(), b.dbvv());
  EXPECT_TRUE(a.CheckInvariants().ok());
}

TEST(DeleteTest, DeleteWinsOverStaleValueEverywhere) {
  // Transitive: the tombstone reaches a third node via an intermediary.
  Replica n0(0, 3), n1(1, 3), n2(2, 3);
  ASSERT_TRUE(n0.Update("x", "v").ok());
  ASSERT_TRUE(PropagateOnce(n0, n1).ok());
  ASSERT_TRUE(PropagateOnce(n1, n2).ok());
  ASSERT_TRUE(n0.Delete("x").ok());
  ASSERT_TRUE(PropagateOnce(n0, n1).ok());
  ASSERT_TRUE(PropagateOnce(n1, n2).ok());
  EXPECT_TRUE(n2.Read("x").status().IsNotFound());
}

TEST(DeleteTest, ConcurrentDeleteAndUpdateConflict) {
  RecordingConflictListener conflicts;
  Replica a(0, 2, &conflicts);
  Replica b(1, 2);
  ASSERT_TRUE(a.Update("x", "base").ok());
  ASSERT_TRUE(PropagateOnce(a, b).ok());

  ASSERT_TRUE(a.Delete("x").ok());        // concurrent delete at a
  ASSERT_TRUE(b.Update("x", "edit").ok());  // concurrent edit at b
  ASSERT_TRUE(PropagateOnce(b, a).ok());
  EXPECT_EQ(conflicts.count(), 1u);
  // Neither side overwritten: a still has the tombstone.
  EXPECT_TRUE(a.Read("x").status().IsNotFound());
}

TEST(DeleteTest, DeleteOnAuxiliaryCopy) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "v").ok());
  ASSERT_TRUE(OobFetch(b, a, "x").ok());
  ASSERT_TRUE(a.Delete("x").ok());  // delete goes to the aux copy
  EXPECT_TRUE(a.Read("x").status().IsNotFound());
  // Regular structures untouched until catch-up.
  EXPECT_FALSE(a.FindItem("x")->deleted);
  EXPECT_EQ(a.aux_log().size(), 1u);

  // Catch-up replays the delete onto the regular copy.
  ASSERT_TRUE(PropagateOnce(b, a).ok());
  EXPECT_TRUE(a.FindItem("x")->deleted);
  EXPECT_FALSE(a.FindItem("x")->HasAux());
  EXPECT_TRUE(a.Read("x").status().IsNotFound());

  // And it propagates back to b.
  ASSERT_TRUE(PropagateOnce(a, b).ok());
  EXPECT_TRUE(b.Read("x").status().IsNotFound());
  EXPECT_TRUE(b.CheckInvariants().ok());
}

TEST(DeleteTest, OobFetchOfTombstone) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("x", "v").ok());
  ASSERT_TRUE(b.Delete("x").ok());
  ASSERT_TRUE(OobFetch(b, a, "x").ok());
  // a received the tombstone as its auxiliary copy.
  EXPECT_TRUE(a.Read("x").status().IsNotFound());
  EXPECT_TRUE(a.FindItem("x")->aux->deleted);
}

}  // namespace
}  // namespace epidemic
