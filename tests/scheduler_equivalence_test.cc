// Equivalence property: the shard-owned task runtime is a scheduling
// change, not a semantic one. The same deterministic action sequence is
// applied to a bare ShardedReplica (the pre-runtime baseline) and to a
// ReplicaServer running the sequence as scheduler tasks; the resulting
// CanonicalState must be byte-identical — at S=1, at S=16 with inline
// gates (workers=0, the old striped configuration), and at S=16 with
// owner worker threads. Read results are compared op-by-op too, which
// pins the optimistic read path to the authoritative map.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/sharded_replica.h"
#include "net/inproc_transport.h"
#include "server/replica_server.h"

namespace epidemic::server {
namespace {

constexpr size_t kNumNodes = 3;
constexpr uint64_t kSeed = 0xeb1d0c5eedULL;

enum class OpKind { kUpdate, kDelete, kRead };

struct Op {
  OpKind kind;
  std::string key;
  std::string value;
};

/// Deterministic workload: a fixed seed over a small key pool, weighted
/// toward updates so deletes hit both live and absent items.
std::vector<Op> MakeWorkload(size_t num_ops) {
  Rng rng(kSeed);
  std::vector<Op> ops;
  ops.reserve(num_ops);
  for (size_t i = 0; i < num_ops; ++i) {
    Op op;
    op.key = "item-" + std::to_string(rng.Uniform(32));
    const uint64_t roll = rng.Uniform(10);
    if (roll < 6) {
      op.kind = OpKind::kUpdate;
      op.value = op.key + "=v" + std::to_string(i);
    } else if (roll < 8) {
      op.kind = OpKind::kDelete;
    } else {
      op.kind = OpKind::kRead;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

/// Runs the workload against the bare core and returns its CanonicalState
/// plus every read outcome ("<value>" or "" for not-found).
std::string RunBaseline(const std::vector<Op>& ops, size_t num_shards,
                        std::vector<std::string>* reads) {
  ShardedReplica replica(/*id=*/0, kNumNodes, num_shards);
  for (const Op& op : ops) {
    switch (op.kind) {
      case OpKind::kUpdate:
        EXPECT_TRUE(replica.Update(op.key, op.value).ok()) << op.key;
        break;
      case OpKind::kDelete: {
        Status s = replica.Delete(op.key);
        EXPECT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
        break;
      }
      case OpKind::kRead: {
        Result<std::string> r = replica.Read(op.key);
        reads->push_back(r.ok() ? *r : "");
        break;
      }
    }
  }
  return replica.CanonicalState();
}

/// Runs the same workload through a ReplicaServer (every op a scheduler
/// task; reads take the optimistic path when they can).
std::string RunServer(const std::vector<Op>& ops, size_t num_shards,
                      size_t workers, size_t read_cache_slots,
                      std::vector<std::string>* reads) {
  net::InProcHub hub(kNumNodes);
  net::InProcTransport transport(&hub);
  ReplicaServer::Options options;
  options.num_shards = num_shards;
  options.ae_workers = workers;
  options.read_cache_slots = read_cache_slots;
  ReplicaServer server(/*id=*/0, kNumNodes, &transport, options);

  for (const Op& op : ops) {
    switch (op.kind) {
      case OpKind::kUpdate:
        EXPECT_TRUE(server.Update(op.key, op.value).ok()) << op.key;
        break;
      case OpKind::kDelete: {
        Status s = server.Delete(op.key);
        EXPECT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
        break;
      }
      case OpKind::kRead: {
        Result<std::string> r = server.Read(op.key);
        reads->push_back(r.ok() ? *r : "");
        // Re-read immediately: the second read often hits the optimistic
        // cache, and must agree with the task-path read either way.
        Result<std::string> again = server.Read(op.key);
        EXPECT_EQ(again.ok(), r.ok()) << op.key;
        if (r.ok() && again.ok()) {
          EXPECT_EQ(*again, *r) << op.key;
        }
        break;
      }
    }
  }

  std::string state;
  server.WithReplica(
      [&state](const ShardedReplica& r) { state = r.CanonicalState(); });
  return state;
}

class SchedulerEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SchedulerEquivalenceTest, ServerMatchesBareCoreAcrossConfigs) {
  const size_t num_shards = GetParam();
  const std::vector<Op> ops = MakeWorkload(600);

  std::vector<std::string> baseline_reads;
  const std::string baseline = RunBaseline(ops, num_shards, &baseline_reads);
  ASSERT_FALSE(baseline.empty());

  struct Config {
    size_t workers;
    size_t cache_slots;
    const char* label;
  };
  const Config configs[] = {
      {0, 0, "inline gates, no read cache (striped-equivalent)"},
      {0, 256, "inline gates, optimistic reads"},
      {2, 256, "owner workers, optimistic reads"},
  };
  for (const Config& config : configs) {
    std::vector<std::string> server_reads;
    const std::string state = RunServer(ops, num_shards, config.workers,
                                        config.cache_slots, &server_reads);
    EXPECT_EQ(state, baseline) << config.label;
    EXPECT_EQ(server_reads, baseline_reads) << config.label;
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, SchedulerEquivalenceTest,
                         ::testing::Values(1, 16),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "S" + std::to_string(info.param);
                         });

// Convergence equivalence: after cross-server anti-entropy, both servers'
// canonical states are identical to each other and carry every update —
// the batch fan-out serve/accept path produces the same merged state no
// matter which side's scheduler ran the tasks.
TEST(SchedulerEquivalenceTest, PullConvergesToIdenticalCanonicalState) {
  net::InProcHub hub(kNumNodes);
  net::InProcTransport transport(&hub);
  std::vector<std::unique_ptr<ReplicaServer>> servers;
  for (NodeId i = 0; i < 2; ++i) {
    ReplicaServer::Options options;
    options.num_shards = 16;
    options.ae_workers = (i == 0) ? 0 : 2;  // mixed configs must interop
    servers.push_back(std::make_unique<ReplicaServer>(i, kNumNodes,
                                                      &transport, options));
    hub.Register(i, servers.back().get());
  }

  // Disjoint key ranges (node 0 even, node 1 odd): conflict-free by
  // construction, so full convergence — identical values everywhere — is
  // the only legal outcome.
  Rng rng(kSeed);
  for (int i = 0; i < 200; ++i) {
    const NodeId writer = static_cast<NodeId>(rng.Uniform(2));
    const std::string key =
        "item-" + std::to_string(2 * rng.Uniform(32) + writer);
    ASSERT_TRUE(
        servers[writer]->Update(key, key + "#" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(servers[0]->PullFrom(1).ok());
  ASSERT_TRUE(servers[1]->PullFrom(0).ok());
  ASSERT_TRUE(servers[0]->PullFrom(1).ok());  // ship 0's merge back

  std::string state0;
  std::string state1;
  servers[0]->WithReplica(
      [&state0](const ShardedReplica& r) { state0 = r.CanonicalState(); });
  servers[1]->WithReplica(
      [&state1](const ShardedReplica& r) { state1 = r.CanonicalState(); });
  EXPECT_EQ(state0, state1);
  servers[0]->WithReplica([](const ShardedReplica& r) {
    EXPECT_TRUE(r.CheckInvariants().ok());
  });

  hub.Register(0, nullptr);
  hub.Register(1, nullptr);
}

}  // namespace
}  // namespace epidemic::server
