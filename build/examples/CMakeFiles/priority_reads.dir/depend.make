# Empty dependencies file for priority_reads.
# This may be replaced when dependencies are built.
