file(REMOVE_RECURSE
  "CMakeFiles/priority_reads.dir/priority_reads.cpp.o"
  "CMakeFiles/priority_reads.dir/priority_reads.cpp.o.d"
  "priority_reads"
  "priority_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
