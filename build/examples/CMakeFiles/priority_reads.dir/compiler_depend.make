# Empty compiler generated dependencies file for priority_reads.
# This may be replaced when dependencies are built.
