# Empty compiler generated dependencies file for durable_node.
# This may be replaced when dependencies are built.
