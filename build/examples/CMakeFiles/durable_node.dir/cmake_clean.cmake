file(REMOVE_RECURSE
  "CMakeFiles/durable_node.dir/durable_node.cpp.o"
  "CMakeFiles/durable_node.dir/durable_node.cpp.o.d"
  "durable_node"
  "durable_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
