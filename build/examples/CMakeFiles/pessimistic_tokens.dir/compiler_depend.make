# Empty compiler generated dependencies file for pessimistic_tokens.
# This may be replaced when dependencies are built.
