file(REMOVE_RECURSE
  "CMakeFiles/pessimistic_tokens.dir/pessimistic_tokens.cpp.o"
  "CMakeFiles/pessimistic_tokens.dir/pessimistic_tokens.cpp.o.d"
  "pessimistic_tokens"
  "pessimistic_tokens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pessimistic_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
