# Empty compiler generated dependencies file for dialup_sync.
# This may be replaced when dependencies are built.
