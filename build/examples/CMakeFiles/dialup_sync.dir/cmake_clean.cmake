file(REMOVE_RECURSE
  "CMakeFiles/dialup_sync.dir/dialup_sync.cpp.o"
  "CMakeFiles/dialup_sync.dir/dialup_sync.cpp.o.d"
  "dialup_sync"
  "dialup_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dialup_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
