# Empty dependencies file for conflict_resolution.
# This may be replaced when dependencies are built.
