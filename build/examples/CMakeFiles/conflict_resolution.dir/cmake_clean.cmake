file(REMOVE_RECURSE
  "CMakeFiles/conflict_resolution.dir/conflict_resolution.cpp.o"
  "CMakeFiles/conflict_resolution.dir/conflict_resolution.cpp.o.d"
  "conflict_resolution"
  "conflict_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
