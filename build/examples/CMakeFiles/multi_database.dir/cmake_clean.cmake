file(REMOVE_RECURSE
  "CMakeFiles/multi_database.dir/multi_database.cpp.o"
  "CMakeFiles/multi_database.dir/multi_database.cpp.o.d"
  "multi_database"
  "multi_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
