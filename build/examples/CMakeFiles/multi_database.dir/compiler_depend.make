# Empty compiler generated dependencies file for multi_database.
# This may be replaced when dependencies are built.
