# Empty compiler generated dependencies file for bench_ablation_log.
# This may be replaced when dependencies are built.
