file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_log.dir/bench_ablation_log.cc.o"
  "CMakeFiles/bench_ablation_log.dir/bench_ablation_log.cc.o.d"
  "bench_ablation_log"
  "bench_ablation_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
