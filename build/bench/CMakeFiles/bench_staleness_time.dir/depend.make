# Empty dependencies file for bench_staleness_time.
# This may be replaced when dependencies are built.
