file(REMOVE_RECURSE
  "CMakeFiles/bench_staleness_time.dir/bench_staleness_time.cc.o"
  "CMakeFiles/bench_staleness_time.dir/bench_staleness_time.cc.o.d"
  "bench_staleness_time"
  "bench_staleness_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_staleness_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
