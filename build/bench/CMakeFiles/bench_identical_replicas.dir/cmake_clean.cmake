file(REMOVE_RECURSE
  "CMakeFiles/bench_identical_replicas.dir/bench_identical_replicas.cc.o"
  "CMakeFiles/bench_identical_replicas.dir/bench_identical_replicas.cc.o.d"
  "bench_identical_replicas"
  "bench_identical_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_identical_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
