# Empty compiler generated dependencies file for bench_identical_replicas.
# This may be replaced when dependencies are built.
