file(REMOVE_RECURSE
  "CMakeFiles/bench_failure_staleness.dir/bench_failure_staleness.cc.o"
  "CMakeFiles/bench_failure_staleness.dir/bench_failure_staleness.cc.o.d"
  "bench_failure_staleness"
  "bench_failure_staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failure_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
