# Empty dependencies file for bench_out_of_bound.
# This may be replaced when dependencies are built.
