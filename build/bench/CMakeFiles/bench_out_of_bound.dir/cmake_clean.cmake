file(REMOVE_RECURSE
  "CMakeFiles/bench_out_of_bound.dir/bench_out_of_bound.cc.o"
  "CMakeFiles/bench_out_of_bound.dir/bench_out_of_bound.cc.o.d"
  "bench_out_of_bound"
  "bench_out_of_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_out_of_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
