# Empty dependencies file for bench_gossip_spread.
# This may be replaced when dependencies are built.
