file(REMOVE_RECURSE
  "CMakeFiles/bench_gossip_spread.dir/bench_gossip_spread.cc.o"
  "CMakeFiles/bench_gossip_spread.dir/bench_gossip_spread.cc.o.d"
  "bench_gossip_spread"
  "bench_gossip_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gossip_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
