# Empty dependencies file for bench_update_overhead.
# This may be replaced when dependencies are built.
