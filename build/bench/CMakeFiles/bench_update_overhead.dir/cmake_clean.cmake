file(REMOVE_RECURSE
  "CMakeFiles/bench_update_overhead.dir/bench_update_overhead.cc.o"
  "CMakeFiles/bench_update_overhead.dir/bench_update_overhead.cc.o.d"
  "bench_update_overhead"
  "bench_update_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
