file(REMOVE_RECURSE
  "CMakeFiles/bench_message_size.dir/bench_message_size.cc.o"
  "CMakeFiles/bench_message_size.dir/bench_message_size.cc.o.d"
  "bench_message_size"
  "bench_message_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_message_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
