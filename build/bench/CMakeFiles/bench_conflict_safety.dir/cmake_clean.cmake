file(REMOVE_RECURSE
  "CMakeFiles/bench_conflict_safety.dir/bench_conflict_safety.cc.o"
  "CMakeFiles/bench_conflict_safety.dir/bench_conflict_safety.cc.o.d"
  "bench_conflict_safety"
  "bench_conflict_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conflict_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
