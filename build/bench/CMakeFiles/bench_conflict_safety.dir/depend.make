# Empty dependencies file for bench_conflict_safety.
# This may be replaced when dependencies are built.
