# Empty dependencies file for bench_ablation_selected_flag.
# This may be replaced when dependencies are built.
