file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_selected_flag.dir/bench_ablation_selected_flag.cc.o"
  "CMakeFiles/bench_ablation_selected_flag.dir/bench_ablation_selected_flag.cc.o.d"
  "bench_ablation_selected_flag"
  "bench_ablation_selected_flag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_selected_flag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
