file(REMOVE_RECURSE
  "CMakeFiles/bench_log_bound.dir/bench_log_bound.cc.o"
  "CMakeFiles/bench_log_bound.dir/bench_log_bound.cc.o.d"
  "bench_log_bound"
  "bench_log_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_log_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
