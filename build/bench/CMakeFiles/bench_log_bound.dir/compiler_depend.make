# Empty compiler generated dependencies file for bench_log_bound.
# This may be replaced when dependencies are built.
