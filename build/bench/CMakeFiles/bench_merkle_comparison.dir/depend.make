# Empty dependencies file for bench_merkle_comparison.
# This may be replaced when dependencies are built.
