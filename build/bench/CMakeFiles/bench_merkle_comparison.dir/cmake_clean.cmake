file(REMOVE_RECURSE
  "CMakeFiles/bench_merkle_comparison.dir/bench_merkle_comparison.cc.o"
  "CMakeFiles/bench_merkle_comparison.dir/bench_merkle_comparison.cc.o.d"
  "bench_merkle_comparison"
  "bench_merkle_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merkle_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
