
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/aux_log.cc" "src/log/CMakeFiles/epi_log.dir/aux_log.cc.o" "gcc" "src/log/CMakeFiles/epi_log.dir/aux_log.cc.o.d"
  "/root/repo/src/log/log_vector.cc" "src/log/CMakeFiles/epi_log.dir/log_vector.cc.o" "gcc" "src/log/CMakeFiles/epi_log.dir/log_vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vv/CMakeFiles/epi_vv.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/epi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
