file(REMOVE_RECURSE
  "CMakeFiles/epi_log.dir/aux_log.cc.o"
  "CMakeFiles/epi_log.dir/aux_log.cc.o.d"
  "CMakeFiles/epi_log.dir/log_vector.cc.o"
  "CMakeFiles/epi_log.dir/log_vector.cc.o.d"
  "libepi_log.a"
  "libepi_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
