# Empty compiler generated dependencies file for epi_log.
# This may be replaced when dependencies are built.
