file(REMOVE_RECURSE
  "libepi_log.a"
)
