file(REMOVE_RECURSE
  "libepi_tokens.a"
)
