# Empty dependencies file for epi_tokens.
# This may be replaced when dependencies are built.
