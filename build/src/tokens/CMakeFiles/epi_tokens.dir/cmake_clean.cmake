file(REMOVE_RECURSE
  "CMakeFiles/epi_tokens.dir/token_service.cc.o"
  "CMakeFiles/epi_tokens.dir/token_service.cc.o.d"
  "libepi_tokens.a"
  "libepi_tokens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
