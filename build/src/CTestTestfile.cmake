# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("vv")
subdirs("log")
subdirs("storage")
subdirs("core")
subdirs("tokens")
subdirs("multidb")
subdirs("baselines")
subdirs("net")
subdirs("sim")
subdirs("server")
