file(REMOVE_RECURSE
  "CMakeFiles/epi_net.dir/codec.cc.o"
  "CMakeFiles/epi_net.dir/codec.cc.o.d"
  "CMakeFiles/epi_net.dir/inproc_transport.cc.o"
  "CMakeFiles/epi_net.dir/inproc_transport.cc.o.d"
  "CMakeFiles/epi_net.dir/tcp_transport.cc.o"
  "CMakeFiles/epi_net.dir/tcp_transport.cc.o.d"
  "libepi_net.a"
  "libepi_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
