file(REMOVE_RECURSE
  "libepi_net.a"
)
