# Empty dependencies file for epi_net.
# This may be replaced when dependencies are built.
