file(REMOVE_RECURSE
  "CMakeFiles/epi_baselines.dir/epidemic_node.cc.o"
  "CMakeFiles/epi_baselines.dir/epidemic_node.cc.o.d"
  "CMakeFiles/epi_baselines.dir/lotus_node.cc.o"
  "CMakeFiles/epi_baselines.dir/lotus_node.cc.o.d"
  "CMakeFiles/epi_baselines.dir/merkle_node.cc.o"
  "CMakeFiles/epi_baselines.dir/merkle_node.cc.o.d"
  "CMakeFiles/epi_baselines.dir/oracle_node.cc.o"
  "CMakeFiles/epi_baselines.dir/oracle_node.cc.o.d"
  "CMakeFiles/epi_baselines.dir/per_item_vv_node.cc.o"
  "CMakeFiles/epi_baselines.dir/per_item_vv_node.cc.o.d"
  "CMakeFiles/epi_baselines.dir/wuu_bernstein_node.cc.o"
  "CMakeFiles/epi_baselines.dir/wuu_bernstein_node.cc.o.d"
  "libepi_baselines.a"
  "libepi_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
