# Empty dependencies file for epi_baselines.
# This may be replaced when dependencies are built.
