file(REMOVE_RECURSE
  "libepi_baselines.a"
)
