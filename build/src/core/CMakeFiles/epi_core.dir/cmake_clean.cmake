file(REMOVE_RECURSE
  "CMakeFiles/epi_core.dir/journal.cc.o"
  "CMakeFiles/epi_core.dir/journal.cc.o.d"
  "CMakeFiles/epi_core.dir/replica.cc.o"
  "CMakeFiles/epi_core.dir/replica.cc.o.d"
  "CMakeFiles/epi_core.dir/snapshot.cc.o"
  "CMakeFiles/epi_core.dir/snapshot.cc.o.d"
  "CMakeFiles/epi_core.dir/wire.cc.o"
  "CMakeFiles/epi_core.dir/wire.cc.o.d"
  "libepi_core.a"
  "libepi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
