
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/journal.cc" "src/core/CMakeFiles/epi_core.dir/journal.cc.o" "gcc" "src/core/CMakeFiles/epi_core.dir/journal.cc.o.d"
  "/root/repo/src/core/replica.cc" "src/core/CMakeFiles/epi_core.dir/replica.cc.o" "gcc" "src/core/CMakeFiles/epi_core.dir/replica.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/core/CMakeFiles/epi_core.dir/snapshot.cc.o" "gcc" "src/core/CMakeFiles/epi_core.dir/snapshot.cc.o.d"
  "/root/repo/src/core/wire.cc" "src/core/CMakeFiles/epi_core.dir/wire.cc.o" "gcc" "src/core/CMakeFiles/epi_core.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/epi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/epi_log.dir/DependInfo.cmake"
  "/root/repo/build/src/vv/CMakeFiles/epi_vv.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/epi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
