# Empty dependencies file for epi_common.
# This may be replaced when dependencies are built.
