file(REMOVE_RECURSE
  "CMakeFiles/epi_common.dir/clock.cc.o"
  "CMakeFiles/epi_common.dir/clock.cc.o.d"
  "CMakeFiles/epi_common.dir/compress.cc.o"
  "CMakeFiles/epi_common.dir/compress.cc.o.d"
  "CMakeFiles/epi_common.dir/hash.cc.o"
  "CMakeFiles/epi_common.dir/hash.cc.o.d"
  "CMakeFiles/epi_common.dir/logging.cc.o"
  "CMakeFiles/epi_common.dir/logging.cc.o.d"
  "CMakeFiles/epi_common.dir/random.cc.o"
  "CMakeFiles/epi_common.dir/random.cc.o.d"
  "CMakeFiles/epi_common.dir/status.cc.o"
  "CMakeFiles/epi_common.dir/status.cc.o.d"
  "libepi_common.a"
  "libepi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
