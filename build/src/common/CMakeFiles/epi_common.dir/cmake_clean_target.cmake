file(REMOVE_RECURSE
  "libepi_common.a"
)
