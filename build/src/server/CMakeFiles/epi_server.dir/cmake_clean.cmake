file(REMOVE_RECURSE
  "CMakeFiles/epi_server.dir/replica_server.cc.o"
  "CMakeFiles/epi_server.dir/replica_server.cc.o.d"
  "libepi_server.a"
  "libepi_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
