file(REMOVE_RECURSE
  "libepi_server.a"
)
