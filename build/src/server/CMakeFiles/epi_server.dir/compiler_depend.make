# Empty compiler generated dependencies file for epi_server.
# This may be replaced when dependencies are built.
