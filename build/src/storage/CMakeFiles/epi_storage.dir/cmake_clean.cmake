file(REMOVE_RECURSE
  "CMakeFiles/epi_storage.dir/item_store.cc.o"
  "CMakeFiles/epi_storage.dir/item_store.cc.o.d"
  "libepi_storage.a"
  "libepi_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
