file(REMOVE_RECURSE
  "libepi_storage.a"
)
