# Empty dependencies file for epi_storage.
# This may be replaced when dependencies are built.
