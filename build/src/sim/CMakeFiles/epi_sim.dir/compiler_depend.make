# Empty compiler generated dependencies file for epi_sim.
# This may be replaced when dependencies are built.
