file(REMOVE_RECURSE
  "CMakeFiles/epi_sim.dir/cluster.cc.o"
  "CMakeFiles/epi_sim.dir/cluster.cc.o.d"
  "CMakeFiles/epi_sim.dir/event_queue.cc.o"
  "CMakeFiles/epi_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/epi_sim.dir/workload.cc.o"
  "CMakeFiles/epi_sim.dir/workload.cc.o.d"
  "libepi_sim.a"
  "libepi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
