file(REMOVE_RECURSE
  "libepi_sim.a"
)
