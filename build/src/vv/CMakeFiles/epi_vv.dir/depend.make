# Empty dependencies file for epi_vv.
# This may be replaced when dependencies are built.
