file(REMOVE_RECURSE
  "libepi_vv.a"
)
