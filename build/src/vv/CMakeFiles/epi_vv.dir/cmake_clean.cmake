file(REMOVE_RECURSE
  "CMakeFiles/epi_vv.dir/version_vector.cc.o"
  "CMakeFiles/epi_vv.dir/version_vector.cc.o.d"
  "CMakeFiles/epi_vv.dir/vv_codec.cc.o"
  "CMakeFiles/epi_vv.dir/vv_codec.cc.o.d"
  "libepi_vv.a"
  "libepi_vv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_vv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
