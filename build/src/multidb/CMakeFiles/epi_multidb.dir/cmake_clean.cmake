file(REMOVE_RECURSE
  "CMakeFiles/epi_multidb.dir/multi_db_node.cc.o"
  "CMakeFiles/epi_multidb.dir/multi_db_node.cc.o.d"
  "CMakeFiles/epi_multidb.dir/multi_db_server.cc.o"
  "CMakeFiles/epi_multidb.dir/multi_db_server.cc.o.d"
  "libepi_multidb.a"
  "libepi_multidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_multidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
