file(REMOVE_RECURSE
  "libepi_multidb.a"
)
