# Empty dependencies file for epi_multidb.
# This may be replaced when dependencies are built.
