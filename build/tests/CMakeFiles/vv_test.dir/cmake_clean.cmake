file(REMOVE_RECURSE
  "CMakeFiles/vv_test.dir/vv_test.cc.o"
  "CMakeFiles/vv_test.dir/vv_test.cc.o.d"
  "vv_test"
  "vv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
