# Empty dependencies file for vv_test.
# This may be replaced when dependencies are built.
