file(REMOVE_RECURSE
  "CMakeFiles/token_service_test.dir/token_service_test.cc.o"
  "CMakeFiles/token_service_test.dir/token_service_test.cc.o.d"
  "token_service_test"
  "token_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
