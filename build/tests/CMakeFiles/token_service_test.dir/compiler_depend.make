# Empty compiler generated dependencies file for token_service_test.
# This may be replaced when dependencies are built.
