# Empty dependencies file for multi_db_server_test.
# This may be replaced when dependencies are built.
