file(REMOVE_RECURSE
  "CMakeFiles/multi_db_server_test.dir/multi_db_server_test.cc.o"
  "CMakeFiles/multi_db_server_test.dir/multi_db_server_test.cc.o.d"
  "multi_db_server_test"
  "multi_db_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_db_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
