# Empty dependencies file for replica_oob_test.
# This may be replaced when dependencies are built.
