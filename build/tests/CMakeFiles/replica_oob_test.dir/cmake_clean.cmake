file(REMOVE_RECURSE
  "CMakeFiles/replica_oob_test.dir/replica_oob_test.cc.o"
  "CMakeFiles/replica_oob_test.dir/replica_oob_test.cc.o.d"
  "replica_oob_test"
  "replica_oob_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_oob_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
