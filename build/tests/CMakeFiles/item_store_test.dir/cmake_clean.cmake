file(REMOVE_RECURSE
  "CMakeFiles/item_store_test.dir/item_store_test.cc.o"
  "CMakeFiles/item_store_test.dir/item_store_test.cc.o.d"
  "item_store_test"
  "item_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/item_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
