# Empty dependencies file for item_store_test.
# This may be replaced when dependencies are built.
