# Empty compiler generated dependencies file for log_vector_test.
# This may be replaced when dependencies are built.
