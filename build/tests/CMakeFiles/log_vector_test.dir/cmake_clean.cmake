file(REMOVE_RECURSE
  "CMakeFiles/log_vector_test.dir/log_vector_test.cc.o"
  "CMakeFiles/log_vector_test.dir/log_vector_test.cc.o.d"
  "log_vector_test"
  "log_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
