file(REMOVE_RECURSE
  "CMakeFiles/aux_log_test.dir/aux_log_test.cc.o"
  "CMakeFiles/aux_log_test.dir/aux_log_test.cc.o.d"
  "aux_log_test"
  "aux_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aux_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
