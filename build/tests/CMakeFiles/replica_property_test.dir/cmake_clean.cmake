file(REMOVE_RECURSE
  "CMakeFiles/replica_property_test.dir/replica_property_test.cc.o"
  "CMakeFiles/replica_property_test.dir/replica_property_test.cc.o.d"
  "replica_property_test"
  "replica_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
