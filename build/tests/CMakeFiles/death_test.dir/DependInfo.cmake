
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/death_test.cc" "tests/CMakeFiles/death_test.dir/death_test.cc.o" "gcc" "tests/CMakeFiles/death_test.dir/death_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/epi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/epi_log.dir/DependInfo.cmake"
  "/root/repo/build/src/vv/CMakeFiles/epi_vv.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/epi_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/epi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/epi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/epi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
