file(REMOVE_RECURSE
  "CMakeFiles/conflict_resolution_test.dir/conflict_resolution_test.cc.o"
  "CMakeFiles/conflict_resolution_test.dir/conflict_resolution_test.cc.o.d"
  "conflict_resolution_test"
  "conflict_resolution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_resolution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
