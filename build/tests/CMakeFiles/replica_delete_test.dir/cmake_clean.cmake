file(REMOVE_RECURSE
  "CMakeFiles/replica_delete_test.dir/replica_delete_test.cc.o"
  "CMakeFiles/replica_delete_test.dir/replica_delete_test.cc.o.d"
  "replica_delete_test"
  "replica_delete_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_delete_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
