# Empty dependencies file for replica_delete_test.
# This may be replaced when dependencies are built.
