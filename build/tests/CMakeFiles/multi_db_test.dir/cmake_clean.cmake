file(REMOVE_RECURSE
  "CMakeFiles/multi_db_test.dir/multi_db_test.cc.o"
  "CMakeFiles/multi_db_test.dir/multi_db_test.cc.o.d"
  "multi_db_test"
  "multi_db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
