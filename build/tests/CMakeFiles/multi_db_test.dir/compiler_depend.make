# Empty compiler generated dependencies file for multi_db_test.
# This may be replaced when dependencies are built.
