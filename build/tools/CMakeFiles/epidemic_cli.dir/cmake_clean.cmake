file(REMOVE_RECURSE
  "CMakeFiles/epidemic_cli.dir/epidemic_cli.cc.o"
  "CMakeFiles/epidemic_cli.dir/epidemic_cli.cc.o.d"
  "epidemic_cli"
  "epidemic_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epidemic_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
