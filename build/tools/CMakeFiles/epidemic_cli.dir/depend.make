# Empty dependencies file for epidemic_cli.
# This may be replaced when dependencies are built.
