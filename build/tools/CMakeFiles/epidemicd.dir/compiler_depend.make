# Empty compiler generated dependencies file for epidemicd.
# This may be replaced when dependencies are built.
