file(REMOVE_RECURSE
  "CMakeFiles/epidemicd.dir/epidemicd.cc.o"
  "CMakeFiles/epidemicd.dir/epidemicd.cc.o.d"
  "epidemicd"
  "epidemicd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epidemicd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
