#!/usr/bin/env bash
# Wire-path benchmarks (DESIGN.md §10, §14 / EXPERIMENTS.md W1, N1).
#
# Runs the benchmarks that back the wire-v3 and network-pipeline
# performance claims and, with --json, merges their machine-readable
# outputs into one artifact:
#   - bench_propagation      µs/item and allocs/exchange, owned vs view path,
#                            plus the sharded v2-vs-v3 wire exchange
#   - bench_message_size     bytes/exchange and control bytes, v2 vs v3 (W1)
#   - bench_sharded_parallel pull rounds/sec under write load
#   - bench_tcp_cluster      multi-process loopback cluster, pooled vs
#                            connect-per-call transport (N1)
#
# Usage: scripts/run_benchmarks.sh [--json] [--smoke] [output.json]
#   --json   write the merged JSON artifact (default name BENCH_PR10.json)
#   --smoke  cut measurement time (CI shape check, not a measurement)
#
# Binaries are expected under $BUILD_DIR/bench (default: build/bench),
# plus $BUILD_DIR/tools/epidemicd for the cluster leg;
# scripts/check.sh --bench-smoke builds them and calls this with
# --json --smoke. Reportable numbers come from the Release preset:
#   cmake --preset bench-release && cmake --build --preset bench-release \
#     && BUILD_DIR=build-release scripts/run_benchmarks.sh --json
# The artifact records build_type and hardware_concurrency so a
# non-Release or single-core run is visible in the JSON itself.
#
# Build-type honesty: `build_type` (and the `epi_build_type` context key
# in google-benchmark rows) is OUR code's CMAKE_BUILD_TYPE. The
# `library_build_type` google-benchmark reports is the *library's* own
# build, and the distro-prebuilt libbenchmark is a debug build — we do
# not control it and cannot rebuild it here (no package installs). The
# library only hosts the timing loop; all measured code is ours. To pin
# both, configure with -DEPI_BENCHMARK_SOURCE_DIR=<google/benchmark
# checkout> and the tree builds the library from source in Release.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
BENCH_DIR="$BUILD_DIR/bench"

json=0
smoke=0
out="BENCH_PR10.json"
for arg in "$@"; do
  case "$arg" in
    --json) json=1 ;;
    --smoke) smoke=1 ;;
    *) out="$arg" ;;
  esac
done

for b in bench_propagation bench_message_size bench_sharded_parallel \
         bench_tcp_cluster; do
  if [ ! -x "$BENCH_DIR/$b" ]; then
    echo "missing $BENCH_DIR/$b — build it first:" >&2
    echo "  cmake --build $BUILD_DIR --target $b" >&2
    exit 1
  fi
done
EPIDEMICD="$BUILD_DIR/tools/epidemicd"
if [ ! -x "$EPIDEMICD" ]; then
  echo "missing $EPIDEMICD — build it first:" >&2
  echo "  cmake --build $BUILD_DIR --target epidemicd" >&2
  exit 1
fi

# Restrict bench_propagation to the headline cases: the m=4096 sweep points
# (owned vs fast) and the sharded wire exchange pair.
filter='BM_SweepDirtyItems(Fast)?/4096$|BM_ShardedWireExchangeV[23]$'
gb_args=("--benchmark_filter=${filter}")
# 4s rows: on a contended 1-core host, 1s rows swing ±50% (a handful of
# multi-ms CFS deschedules dominate); 4s rows are stable to a few percent.
par_seconds=4.0
# 200 measured rounds/leg keeps the unpooled leg's ephemeral-port churn
# well under the loopback TIME_WAIT budget while the percentiles are
# already stable; smoke just checks the harness shape.
cluster_rounds=200
if [ "$smoke" -eq 1 ]; then
  gb_args+=("--benchmark_min_time=0.02")
  par_seconds=0.2
  cluster_rounds=25
fi
cluster_args=("--epidemicd=$EPIDEMICD" "--rounds=$cluster_rounds")

if [ "$json" -eq 0 ]; then
  "$BENCH_DIR/bench_propagation" "${gb_args[@]}"
  echo
  "$BENCH_DIR/bench_message_size"
  echo
  "$BENCH_DIR/bench_sharded_parallel" "$par_seconds"
  echo
  "$BENCH_DIR/bench_tcp_cluster" "${cluster_args[@]}"
  exit 0
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

"$BENCH_DIR/bench_propagation" "${gb_args[@]}" \
    --benchmark_format=json > "$tmpdir/prop.json"
"$BENCH_DIR/bench_message_size" --json > "$tmpdir/msg.json"
"$BENCH_DIR/bench_sharded_parallel" --json "$par_seconds" > "$tmpdir/par.json"
"$BENCH_DIR/bench_tcp_cluster" "${cluster_args[@]}" --json \
    > "$tmpdir/cluster.json"

SMOKE="$smoke" OUT="$out" TMPDIR_BENCH="$tmpdir" python3 - <<'PY'
import json, os

tmp = os.environ["TMPDIR_BENCH"]
prop = json.load(open(os.path.join(tmp, "prop.json")))
msg = json.load(open(os.path.join(tmp, "msg.json")))
par = json.load(open(os.path.join(tmp, "par.json")))
cluster = json.load(open(os.path.join(tmp, "cluster.json")))

rows = {b["name"]: b for b in prop["benchmarks"]}

def exchange(name):
    b = rows[name]
    assert b.get("time_unit", "us") == "us", b
    m = b.get("m_dirty", 0)
    return {
        "us_per_exchange": round(b["real_time"], 3),
        "us_per_item": round(b["real_time"] / m, 4) if m else None,
        "m_dirty": int(m),
        "serve_allocs_per_exchange": b.get("serve_allocs"),
        "accept_allocs_per_exchange": b.get("accept_allocs"),
        "frame_bytes_per_exchange": b.get("frame_bytes"),
    }

owned = exchange("BM_SweepDirtyItems/4096")
fast = exchange("BM_SweepDirtyItemsFast/4096")
v2 = exchange("BM_ShardedWireExchangeV2")
v3 = exchange("BM_ShardedWireExchangeV3")

def pct_faster(a, b):
    return round(100.0 * (1.0 - b / a), 2) if a else None

def ratio(a, b):
    if a is None or b is None:
        return None
    return round(a / b, 2) if b else None  # None: divisor is exactly 0

result = {
    "artifact": "BENCH_PR10",
    "smoke": os.environ["SMOKE"] == "1",
    "build_type": par.get("build_type", "unknown"),
    "hardware_concurrency": par.get("hardware_concurrency"),
    "host_context": prop.get("context", {}),
    "propagation": {
        "n_items": 65536,
        "owned": owned,
        "fast": fast,
        "us_per_item_improvement_pct": pct_faster(
            owned["us_per_exchange"], fast["us_per_exchange"]),
        # None here means the fast path performed ZERO staging allocs
        # (an infinite reduction); the raw per-path counts are above.
        "accept_allocs_reduction_x": ratio(
            owned["accept_allocs_per_exchange"],
            fast["accept_allocs_per_exchange"]),
    },
    "sharded_wire": {
        "v2": v2,
        "v3": v3,
        "us_per_exchange_improvement_pct": pct_faster(
            v2["us_per_exchange"], v3["us_per_exchange"]),
        "frame_bytes_reduction_pct": pct_faster(
            v2["frame_bytes_per_exchange"], v3["frame_bytes_per_exchange"]),
    },
    "message_size_w1": msg["w1_rows"],
    "sharded_parallel": par,
    "tcp_cluster": cluster,
}

out = os.environ["OUT"]
with open(out, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {out}")

sw = result["sharded_wire"]
print(f"  wire exchange us/item (N=65536, m=4096) v2={v2['us_per_item']} "
      f"v3={v3['us_per_item']} ({sw['us_per_exchange_improvement_pct']}% "
      f"faster)")
p = result["propagation"]
print(f"  in-process us/item owned={owned['us_per_item']} "
      f"fast={fast['us_per_item']} "
      f"({p['us_per_item_improvement_pct']}% faster)")
print(f"  accept allocs/exchange owned={owned['accept_allocs_per_exchange']} "
      f"fast={fast['accept_allocs_per_exchange']}")
w1 = [r for r in msg["w1_rows"] if r["nodes"] >= 16 and r["m_items"] >= 64]
worst = min(r["control_reduction_pct"] for r in w1)
print(f"  W1 control-byte reduction at n>=16, m>=64: worst {worst:.1f}%")
loaded = {(r["shards"], r["workers"]): r
          for r in par["rows"] if r["writers"] > 0}
base = loaded.get((1, 0))
owned = loaded.get((16, 4))
if base and owned:
    print(f"  sharded-parallel ({result['build_type']}, "
          f"{result['hardware_concurrency']} hw threads): "
          f"S=1/w=0 {base['rounds_per_sec']:.0f} rounds/s, "
          f"S=16/w=4 {owned['rounds_per_sec']:.0f} rounds/s "
          f"(loaded_speedup {par['loaded_speedup']:.3f}); "
          f"update p99 {base['update_p99_us']:.0f} -> "
          f"{owned['update_p99_us']:.0f} us")
cp = cluster["pooled"]
cu = cluster["unpooled"]
print(f"  tcp-cluster ({cluster['nodes']} nodes, {cluster['rounds']} "
      f"rounds): pooled {cp['rounds_per_sec']:.0f} rounds/s "
      f"(opened={cp['net_connections_opened']}, "
      f"reused={cp['net_connections_reused']}), unpooled "
      f"{cu['rounds_per_sec']:.0f} rounds/s "
      f"(speedup {cluster['pooled_speedup']:.2f}x); "
      f"serve cache hit rate {cluster['serve_cache_hit_rate']:.3f}")
PY
