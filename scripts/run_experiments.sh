#!/usr/bin/env bash
# Regenerates every experiment in DESIGN.md §4 / EXPERIMENTS.md.
# Usage: scripts/run_experiments.sh [output-file]
set -u

cd "$(dirname "$0")/.."
out="${1:-bench_output.txt}"

cmake -B build -G Ninja >/dev/null
cmake --build build >/dev/null

{
  for b in build/bench/bench_*; do
    [ -x "$b" ] || continue
    echo "===== $(basename "$b") ====="
    "$b"
    echo
  done
} 2>&1 | tee "$out"

echo "wrote $out"
