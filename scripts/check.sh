#!/usr/bin/env bash
# Configure, build, and run the full test suite.
#
#   scripts/check.sh          # plain RelWithDebInfo build in build/
#   scripts/check.sh --asan   # AddressSanitizer+UBSan build in build-asan/
#   scripts/check.sh --tsan   # ThreadSanitizer build in build-tsan/
#   scripts/check.sh --ubsan  # standalone UBSan build in build-ubsan/
#   scripts/check.sh --tidy   # clang-tidy over the compilation database
#   scripts/check.sh --lint-ast  # protocol_lint + epilint (AST rules when
#                                # libclang is available; lexical rule always)
#   scripts/check.sh --model  # build + exhaustive epicheck model runs
#   scripts/check.sh --bench-smoke  # build + one fast benchmark pass (JSON)
#   scripts/check.sh --net-smoke    # build + TCP pipeline tests + a short
#                                   # multi-process loopback cluster run
#   scripts/check.sh --fuzz-smoke   # short fuzz run of every decode target:
#                                   # libFuzzer+ASan/UBSan under clang,
#                                   # the deterministic mini fuzzer otherwise
#
# Extra arguments after the mode are passed to ctest (e.g. -R server);
# after --model they are passed to every epicheck invocation, and after
# --bench-smoke to scripts/run_benchmarks.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-}"
case "$mode" in
  --asan)
    shift
    build_dir=build-asan
    cmake_flags=(-DEPIDEMIC_ASAN=ON)
    ;;
  --tsan)
    shift
    build_dir=build-tsan
    cmake_flags=(-DEPIDEMIC_TSAN=ON)
    ;;
  --ubsan)
    shift
    build_dir=build-ubsan
    cmake_flags=(-DEPIDEMIC_UBSAN=ON)
    ;;
  --tidy)
    shift
    if ! command -v clang-tidy > /dev/null 2>&1; then
      echo "error: clang-tidy not found on PATH." >&2
      echo "Install LLVM/clang tooling, or rely on the CI clang-tidy job." >&2
      exit 1
    fi
    build_dir=build-tidy
    # Configure only: clang-tidy needs compile_commands.json, not objects.
    cmake -B "$build_dir" -S . > /dev/null
    mapfile -t sources < <(find src tools -name '*.cc' | sort)
    echo "clang-tidy: checking ${#sources[@]} translation units"
    clang-tidy -p "$build_dir" --quiet "${sources[@]}" "$@"
    echo "clang-tidy: clean"
    exit 0
    ;;
  --lint-ast)
    shift
    build_dir=build
    # Configure only: epilint_ast.py reads build/compile_commands.json when
    # present so each TU is parsed with its real flags.
    cmake -B "$build_dir" -S . > /dev/null
    python3 tools/protocol_lint.py
    # The probe is informational here: without libclang the AST rules skip
    # with a diagnostic and only the lexical rule is enforced; the CI
    # lint-ast job pins libclang so the full set always runs there.
    python3 tools/epilint_ast.py --probe || true
    python3 tools/epilint_ast.py --build-dir "$build_dir" "$@"
    echo "lint-ast: clean"
    exit 0
    ;;
  --model)
    shift
    build_dir=build
    cmake -B "$build_dir" -S . > /dev/null
    cmake --build "$build_dir" -j"$(nproc)" --target epicheck epicheck_test
    # The reference configurations from DESIGN.md §9: every interleaving
    # of the action alphabet up to the stated depth, against the real
    # replica code. The sharded legs exercise the real wire segments —
    # the default drives v3 delta segments (tags 17/18), the explicit
    # --wire 2 leg keeps the legacy owned path (tags 14/15) covered. Then
    # the ctest leg replays the checked-in trace fixtures (seeded defects
    # must still reproduce, clean traces must still pass).
    "$build_dir"/tools/epicheck --nodes 2 --items 2 --depth 8 "$@"
    "$build_dir"/tools/epicheck --nodes 3 --items 2 --depth 6 "$@"
    "$build_dir"/tools/epicheck --nodes 2 --items 2 --depth 6 --shards 2 "$@"
    "$build_dir"/tools/epicheck --nodes 2 --items 2 --depth 6 --shards 2 \
        --wire 2 "$@"
    ctest --test-dir "$build_dir" --output-on-failure -R epicheck
    exit 0
    ;;
  --bench-smoke)
    shift
    build_dir=build
    cmake -B "$build_dir" -S . > /dev/null
    cmake --build "$build_dir" -j"$(nproc)" --target \
        bench_propagation bench_message_size bench_sharded_parallel \
        bench_tcp_cluster epidemicd
    scripts/run_benchmarks.sh --json --smoke "$@"
    exit 0
    ;;
  --net-smoke)
    shift
    # The network-pipeline leg (DESIGN.md §14 / EXPERIMENTS.md N1): the
    # TCP framing + connection-pool unit tests, then a short real
    # multi-process cluster — N epidemicd daemons forked on loopback,
    # pooled vs connect-per-call — so a transport regression that only
    # shows up across process boundaries fails here, not in a paper run.
    build_dir=build
    cmake -B "$build_dir" -S . > /dev/null
    cmake --build "$build_dir" -j"$(nproc)" --target \
        tcp_transport_test bench_tcp_cluster epidemicd
    ctest --test-dir "$build_dir" --output-on-failure \
        -R 'tcp_transport_test|transport_test'
    "$build_dir"/bench/bench_tcp_cluster \
        --epidemicd="$build_dir"/tools/epidemicd --rounds=25 "$@"
    exit 0
    ;;
  --fuzz-smoke)
    shift
    # Give each decode target a short budget and fail on the first finding
    # (fuzz/ — DESIGN.md §13). With clang this is the real thing: one
    # coverage-guided libFuzzer binary per target under ASan+UBSan, seeded
    # from the checked-in corpora. Anywhere else (gcc-only containers) the
    # same harnesses run under the in-tree deterministic mini fuzzer, so
    # the mode never silently does nothing. Crashing inputs land in
    # fuzz-artifacts/ — minimize and check them into tests/testdata/fuzz/.
    seconds="${FUZZ_SMOKE_SECONDS:-60}"
    if command -v clang++ > /dev/null 2>&1; then
      build_dir=build-fuzz
      cmake -B "$build_dir" -S . -DCMAKE_C_COMPILER=clang \
          -DCMAKE_CXX_COMPILER=clang++ -DEPIDEMIC_FUZZ=ON \
          -DEPIDEMIC_ASAN=ON > /dev/null
      mkdir -p fuzz-artifacts
      for target in codec wire_segment_v3 vv_delta snapshot journal \
                    server_frame multidb tokens fixture; do
        cmake --build "$build_dir" -j"$(nproc)" --target "fuzz_$target"
        corpus="tests/testdata/fuzz/$target"
        mkdir -p "$corpus"
        "$build_dir/fuzz/fuzz_$target" -max_total_time="$seconds" \
            -artifact_prefix=fuzz-artifacts/ "$corpus" "$@"
      done
      echo "fuzz-smoke: ${seconds}s per target, no findings (libFuzzer)"
    else
      build_dir=build
      cmake -B "$build_dir" -S . > /dev/null
      cmake --build "$build_dir" -j"$(nproc)" --target fuzz_replay
      for target in codec wire_segment_v3 vv_delta snapshot journal \
                    fixture; do
        "$build_dir"/fuzz/fuzz_replay "$target" --fuzz --runs 5000 \
            tests/testdata/fuzz/"$target" "$@"
      done
      for target in tokens multidb server_frame; do
        "$build_dir"/fuzz/fuzz_replay "$target" --fuzz --runs 500 \
            tests/testdata/fuzz/"$target" "$@"
      done
      echo "fuzz-smoke: no findings (deterministic mini fuzzer; install" \
           "clang for coverage-guided runs)"
    fi
    exit 0
    ;;
  --*)
    echo "error: unknown mode '$mode'" >&2
    echo "usage: scripts/check.sh [--asan|--tsan|--ubsan|--tidy|--lint-ast|--model|--bench-smoke|--net-smoke|--fuzz-smoke] [ctest args]" >&2
    exit 2
    ;;
  *)
    build_dir=build
    cmake_flags=()
    ;;
esac

cmake -B "$build_dir" -S . "${cmake_flags[@]}"
cmake --build "$build_dir" -j"$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" "$@"
