#!/usr/bin/env bash
# Configure, build, and run the full test suite.
#
#   scripts/check.sh          # plain RelWithDebInfo build in build/
#   scripts/check.sh --asan   # AddressSanitizer+UBSan build in build-asan/
#   scripts/check.sh --tsan   # ThreadSanitizer build in build-tsan/
#
# Extra arguments after the mode are passed to ctest (e.g. -R server).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-}"
case "$mode" in
  --asan)
    shift
    build_dir=build-asan
    cmake_flags=(-DEPIDEMIC_ASAN=ON)
    ;;
  --tsan)
    shift
    build_dir=build-tsan
    cmake_flags=(-DEPIDEMIC_TSAN=ON)
    ;;
  *)
    build_dir=build
    cmake_flags=()
    ;;
esac

cmake -B "$build_dir" -S . "${cmake_flags[@]}"
cmake --build "$build_dir" -j"$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" "$@"
