#!/usr/bin/env bash
# Configure, build, and run the full test suite.
#
#   scripts/check.sh          # plain RelWithDebInfo build in build/
#   scripts/check.sh --asan   # AddressSanitizer+UBSan build in build-asan/
#   scripts/check.sh --tsan   # ThreadSanitizer build in build-tsan/
#   scripts/check.sh --ubsan  # standalone UBSan build in build-ubsan/
#   scripts/check.sh --tidy   # clang-tidy over the compilation database
#
# Extra arguments after the mode are passed to ctest (e.g. -R server).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-}"
case "$mode" in
  --asan)
    shift
    build_dir=build-asan
    cmake_flags=(-DEPIDEMIC_ASAN=ON)
    ;;
  --tsan)
    shift
    build_dir=build-tsan
    cmake_flags=(-DEPIDEMIC_TSAN=ON)
    ;;
  --ubsan)
    shift
    build_dir=build-ubsan
    cmake_flags=(-DEPIDEMIC_UBSAN=ON)
    ;;
  --tidy)
    shift
    if ! command -v clang-tidy > /dev/null 2>&1; then
      echo "error: clang-tidy not found on PATH." >&2
      echo "Install LLVM/clang tooling, or rely on the CI clang-tidy job." >&2
      exit 1
    fi
    build_dir=build-tidy
    # Configure only: clang-tidy needs compile_commands.json, not objects.
    cmake -B "$build_dir" -S . > /dev/null
    mapfile -t sources < <(find src tools -name '*.cc' | sort)
    echo "clang-tidy: checking ${#sources[@]} translation units"
    clang-tidy -p "$build_dir" --quiet "${sources[@]}" "$@"
    echo "clang-tidy: clean"
    exit 0
    ;;
  --*)
    echo "error: unknown mode '$mode'" >&2
    echo "usage: scripts/check.sh [--asan|--tsan|--ubsan|--tidy] [ctest args]" >&2
    exit 2
    ;;
  *)
    build_dir=build
    cmake_flags=()
    ;;
esac

cmake -B "$build_dir" -S . "${cmake_flags[@]}"
cmake --build "$build_dir" -j"$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" "$@"
